//! The timing-accurate functional simulator (§IV-D of the paper).
//!
//! Models kernel execution time (method cycles), data access time (per-word
//! input reads and output writes), channel buffering (bounded queues, one
//! iteration of implicit buffering per port plus configurable slack), and
//! per-PE scheduling (round-robin time multiplexing of resident kernels).
//! Placement and communication delays are *not* modeled, matching the
//! paper's simplification for throughput-oriented applications.
//!
//! Application inputs inject samples on a strict schedule derived from their
//! declared rate; an injection that finds a full queue is recorded as a
//! real-time violation. This is the mechanism used to "simulate to verify
//! that the application meets its real-time constraints".
//!
//! Scheduling uses a per-PE *ready set*: a node is marked dirty when an
//! item lands on one of its queues or when it fires, and cleaned when a
//! scan finds it unable to progress. A node whose inputs have not changed
//! cannot have gained a plan, so clean nodes are skipped without
//! re-planning and a PE whose dirty count is zero is dispatched in O(1).
//! The round-robin pointer advances exactly as in a full scan, so the
//! schedule — and therefore every simulation result — is bit-identical to
//! the exhaustive version.

use crate::runtime::{Action, Program};
use crate::stats::{PeStats, RealTimeVerdict, SimReport};
use bp_core::graph::AppGraph;
use bp_core::item::Item;
use bp_core::kernel::NodeRole;
use bp_core::machine::{MachineSpec, Mapping};
use bp_core::token::ControlToken;
use bp_core::{BpError, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Timed simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Target machine.
    pub machine: MachineSpec,
    /// Capacity of each input queue in items. The paper's model gives each
    /// port implicit buffering of one iteration; we default to a few items
    /// of slack on top so token interleaving does not artificially stall.
    pub channel_capacity: usize,
    /// Frames to push through every application input.
    pub frames: u32,
}

impl SimConfig {
    /// Default configuration on the evaluation machine. The default channel
    /// capacity (64 items) gives kernels roughly a window-row of slack so
    /// that within-frame burstiness — a windowed kernel receives its row of
    /// windows faster than it drains them, catching up during the halo rows
    /// — does not register as missed deadlines while sustained overload
    /// still does.
    pub fn new(frames: u32) -> Self {
        Self {
            machine: MachineSpec::default_eval(),
            channel_capacity: 64,
            frames,
        }
    }

    /// Use a specific machine.
    pub fn with_machine(mut self, machine: MachineSpec) -> Self {
        self.machine = machine;
        self
    }
}

#[derive(Debug)]
enum EventKind {
    /// Inject the next sample of a source.
    SourceEmit { source: usize },
    /// A PE finishes its current firing.
    PeDone { pe: usize },
}

struct Event {
    t: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: smaller time first; ties resolved by insertion order.
        other
            .t
            .partial_cmp(&self.t)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Inflight {
    node: usize,
    emitted: Vec<(usize, Item)>,
    run_s: f64,
    read_s: f64,
    write_s: f64,
}

/// The timing-accurate simulator. Construct with a graph, a kernel-to-PE
/// mapping, and a configuration, then [`run`](Self::run).
pub struct TimedSimulator {
    program: Program,
    residents: Vec<Vec<usize>>,
    pe_of_node: Vec<usize>,
    rr: Vec<usize>,
    pe_inflight: Vec<Option<Inflight>>,
    upstream: Vec<Vec<usize>>,
    config: SimConfig,
    events: BinaryHeap<Event>,
    seq: u64,
    now: f64,
    stats: Vec<PeStats>,
    node_busy: Vec<f64>,
    violations: u64,
    sink_eof_times: Vec<f64>,
    /// Injection time of each frame's first sample, per source.
    frame_start_times: Vec<f64>,
    /// Custom-token emissions per node, for §II-C rate-bound checking.
    custom_token_emissions: Vec<u64>,
    source_progress: Vec<u64>,
    budget_overruns: Vec<u64>,
    node_max_queue: Vec<usize>,
    required_rate_hz: f64,
    node_roles: Vec<NodeRole>,
    /// Ready-set state: `dirty[node]` is true when the node's inputs or
    /// private state changed since its last failed plan; a clean node is
    /// guaranteed unable to fire and is skipped without re-planning.
    dirty: Vec<bool>,
    /// Number of dirty residents per PE; zero means the PE has no work.
    dirty_count: Vec<usize>,
}

impl TimedSimulator {
    /// Instantiate the graph under the given mapping.
    pub fn new(graph: &AppGraph, mapping: &Mapping, config: SimConfig) -> Result<Self> {
        if mapping.pe_of_node.len() != graph.node_count() {
            return Err(BpError::Simulation(format!(
                "mapping covers {} nodes but graph has {}",
                mapping.pe_of_node.len(),
                graph.node_count()
            )));
        }
        let program = Program::instantiate(graph)?;
        let n = program.nodes.len();
        let mut upstream = vec![Vec::new(); n];
        for (_, c) in graph.channels() {
            if !upstream[c.dst.node.0].contains(&c.src.node.0) {
                upstream[c.dst.node.0].push(c.src.node.0);
            }
        }
        let node_roles: Vec<NodeRole> = program.nodes.iter().map(|rt| rt.spec.role).collect();
        let required_rate_hz = graph
            .sources()
            .iter()
            .map(|s| s.rate_hz)
            .fold(0.0f64, f64::max);
        let residents = mapping.residents();
        Ok(Self {
            pe_of_node: mapping.pe_of_node.clone(),
            rr: vec![0; residents.len()],
            pe_inflight: (0..residents.len()).map(|_| None).collect(),
            dirty: vec![false; n],
            dirty_count: vec![0; residents.len()],
            residents,
            upstream,
            stats: vec![PeStats::default(); mapping.num_pes],
            node_busy: vec![0.0; n],
            program,
            config,
            events: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            violations: 0,
            sink_eof_times: Vec::new(),
            frame_start_times: Vec::new(),
            custom_token_emissions: vec![0; n],
            source_progress: vec![0; 64],
            budget_overruns: vec![0; n],
            node_max_queue: vec![0; n],
            required_rate_hz,
            node_roles,
        })
    }

    fn push_event(&mut self, t: f64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Event {
            t,
            seq: self.seq,
            kind,
        });
    }

    /// Mark a node as possibly able to fire. Sources are paced externally
    /// and never enter the ready set.
    #[inline]
    fn mark_dirty(&mut self, node: usize) {
        if !self.dirty[node] && self.node_roles[node] != NodeRole::Source {
            self.dirty[node] = true;
            self.dirty_count[self.pe_of_node[node]] += 1;
        }
    }

    #[inline]
    fn clear_dirty(&mut self, node: usize) {
        if self.dirty[node] {
            self.dirty[node] = false;
            self.dirty_count[self.pe_of_node[node]] -= 1;
        }
    }

    /// Run the simulation to completion and report.
    pub fn run(mut self) -> Result<SimReport> {
        // Constants fire at t = 0, before any source sample.
        let consts = self.program.consts.clone();
        for (node, method) in consts {
            let emitted = self.program.nodes[node].fire_untriggered(method);
            // The firing may change the node's private state (e.g. a
            // feedback primer becoming ready), so re-plan it.
            self.mark_dirty(node);
            let touched = self.route_timed(node, emitted);
            self.dispatch_wave(touched);
        }
        self.source_progress = vec![0; self.program.sources.len()];
        for s in 0..self.program.sources.len() {
            self.push_event(0.0, EventKind::SourceEmit { source: s });
        }

        while let Some(ev) = self.events.pop() {
            self.now = ev.t;
            match ev.kind {
                EventKind::SourceEmit { source } => self.handle_source_emit(source),
                EventKind::PeDone { pe } => self.handle_pe_done(pe),
            }
        }

        // Everything settled. If any node still has a fireable plan, the
        // only thing that can have stopped it is downstream capacity — with
        // all PEs idle that is a genuine capacity deadlock. Residual items
        // with no fireable plan are legitimate (e.g. the final frame
        // circulating in a feedback loop) and are reported, not fatal.
        let deadlocked = (0..self.program.nodes.len()).any(|i| {
            self.node_roles[i] != NodeRole::Source && self.program.nodes[i].plan().is_some()
        });
        if deadlocked {
            return Err(BpError::Simulation(format!(
                "capacity deadlock with {} items queued:\n{}",
                self.program.queued_items(),
                self.program.stuck_report()
            )));
        }
        let residual = self.program.queued_items() as u64;

        let frames_completed = self.frames_completed();
        let achieved = self.achieved_rate(frames_completed);
        let met = self.violations == 0 && frames_completed >= self.config.frames;
        // Per-frame latency: first sample injection -> sink end-of-frame.
        // With several sinks, take the last EOF of each frame.
        let sinks = self
            .node_roles
            .iter()
            .filter(|r| **r == NodeRole::Sink)
            .count()
            .max(1);
        let frame_latencies: Vec<f64> = self
            .sink_eof_times
            .chunks(sinks)
            .zip(self.frame_start_times.iter())
            .map(|(eofs, start)| eofs.iter().cloned().fold(0.0f64, f64::max) - start)
            .collect();
        // §II-C: verify every kernel stayed within its declared custom-token
        // rate bounds over the simulated interval.
        let mut token_rate_violations = Vec::new();
        if self.now > 0.0 {
            for (i, rt) in self.program.nodes.iter().enumerate() {
                let emitted = self.custom_token_emissions[i];
                if emitted == 0 {
                    continue;
                }
                let declared: f64 = rt.spec.custom_tokens.iter().map(|t| t.max_rate_hz).sum();
                let observed = emitted as f64 / self.now;
                // Allow one token of slack for startup transients.
                if observed > declared + 1.0 / self.now {
                    token_rate_violations.push((rt.name.clone(), observed, declared));
                }
            }
        }
        Ok(SimReport {
            pe_stats: self.stats,
            node_firings: self.program.nodes.iter().map(|n| n.firings).collect(),
            node_busy: self.node_busy,
            sim_time: self.now,
            frames_completed,
            residual_items: residual,
            budget_overruns: self.budget_overruns,
            node_max_queue: self.node_max_queue,
            frame_latencies,
            token_rate_violations,
            verdict: RealTimeVerdict {
                met,
                violations: self.violations,
                required_rate_hz: self.required_rate_hz,
                achieved_rate_hz: achieved,
            },
        })
    }

    fn frames_completed(&self) -> u32 {
        let sinks = self
            .node_roles
            .iter()
            .filter(|r| **r == NodeRole::Sink)
            .count()
            .max(1);
        (self.sink_eof_times.len() / sinks) as u32
    }

    fn achieved_rate(&self, frames: u32) -> f64 {
        // One frame completes when all sinks have seen its end-of-frame;
        // group the EOF arrivals per frame and rate the completions.
        let sinks = self
            .node_roles
            .iter()
            .filter(|r| **r == NodeRole::Sink)
            .count()
            .max(1);
        let completions: Vec<f64> = self
            .sink_eof_times
            .chunks_exact(sinks)
            .map(|c| c.iter().cloned().fold(0.0f64, f64::max))
            .collect();
        if completions.len() >= 2 {
            let first = completions[0];
            let last = *completions.last().unwrap();
            if last > first {
                return (completions.len() - 1) as f64 / (last - first);
            }
        }
        if self.now > 0.0 {
            frames as f64 / self.now
        } else {
            0.0
        }
    }

    fn handle_source_emit(&mut self, source: usize) {
        let s = self.program.sources[source];
        if source == 0 && self.source_progress[source].is_multiple_of(s.frame.area()) {
            self.frame_start_times.push(self.now);
        }
        // Check capacity at the destinations before injecting; a full queue
        // at the scheduled time is a missed deadline (counted once per
        // injection, however many destinations are saturated).
        let full = self.program.routes[s.node][0].iter().any(|&(dn, dp)| {
            self.program.nodes[dn].queues[dp].len() >= self.config.channel_capacity
        });
        if full {
            self.violations += 1;
        }
        let emitted = self.program.nodes[s.node].fire_untriggered(s.method);
        let touched = self.route_timed(s.node, emitted);
        self.dispatch_wave(touched);

        self.source_progress[source] += 1;
        let total = s.frame.area() * self.config.frames as u64;
        if self.source_progress[source] < total {
            let period = 1.0 / (s.rate_hz * s.frame.area() as f64);
            let t_next = self.source_progress[source] as f64 * period;
            self.push_event(t_next, EventKind::SourceEmit { source });
        }
    }

    fn handle_pe_done(&mut self, pe: usize) {
        let inflight = self.pe_inflight[pe]
            .take()
            .expect("PeDone without inflight");
        self.stats[pe].run += inflight.run_s;
        self.stats[pe].read += inflight.read_s;
        self.stats[pe].write += inflight.write_s;
        self.node_busy[inflight.node] += inflight.run_s + inflight.read_s + inflight.write_s;
        let mut touched = self.route_timed(inflight.node, inflight.emitted);
        touched.push(pe);
        self.dispatch_wave(touched);
    }

    /// Deliver items, recording sink EOF arrival times and marking the
    /// receiving nodes dirty. Returns the PEs that may now have new work;
    /// the drained buffer is recycled to the emitting node.
    fn route_timed(&mut self, from: usize, mut emitted: Vec<(usize, Item)>) -> Vec<usize> {
        let mut touched = Vec::new();
        for (port, item) in emitted.drain(..) {
            if let Item::Control(ControlToken::Custom(_)) = item {
                self.custom_token_emissions[from] += 1;
            }
            let n_dests = self.program.routes[from][port].len();
            for di in 0..n_dests {
                let (dn, dp) = self.program.routes[from][port][di];
                if self.node_roles[dn] == NodeRole::Sink {
                    if let Item::Control(ControlToken::EndOfFrame) = item {
                        self.sink_eof_times.push(self.now);
                    }
                }
                self.program.nodes[dn].queues[dp].push_back(item.clone());
                let depth = self.program.nodes[dn].queues[dp].len();
                if depth > self.node_max_queue[dn] {
                    self.node_max_queue[dn] = depth;
                }
                self.mark_dirty(dn);
                let pe = self.pe_of_node[dn];
                if !touched.contains(&pe) {
                    touched.push(pe);
                }
            }
        }
        self.program.nodes[from].recycle_out_buf(emitted);
        touched
    }

    /// Attempt to start work on each PE in the list; starting a firing frees
    /// upstream queue space, so upstream PEs are re-attempted transitively.
    fn dispatch_wave(&mut self, mut worklist: Vec<usize>) {
        while let Some(pe) = worklist.pop() {
            if self.pe_inflight[pe].is_some() {
                continue;
            }
            if let Some(node) = self.try_start(pe) {
                for i in 0..self.upstream[node].len() {
                    let up_pe = self.pe_of_node[self.upstream[node][i]];
                    if !worklist.contains(&up_pe) {
                        worklist.push(up_pe);
                    }
                }
                // The PE itself is now busy; it will be revisited at PeDone.
            }
        }
    }

    /// Try to begin one firing on `pe`; returns the node that fired.
    ///
    /// Residents are scanned in round-robin order, skipping clean nodes
    /// (their inputs have not changed since they last failed to plan, so
    /// they still cannot fire). A dirty node that plans `None` is cleaned;
    /// one that is only blocked on downstream space stays dirty, because
    /// space freeing re-triggers a dispatch of this PE. The round-robin
    /// pointer advances exactly as in an exhaustive scan.
    fn try_start(&mut self, pe: usize) -> Option<usize> {
        if self.dirty_count[pe] == 0 {
            return None;
        }
        let len = self.residents[pe].len();
        for k in 0..len {
            let idx = (self.rr[pe] + k) % len;
            let node = self.residents[pe][idx];
            if !self.dirty[node] {
                continue;
            }
            let Some(action) = self.program.nodes[node].plan() else {
                self.clear_dirty(node);
                continue;
            };
            if !self.downstream_space(node, action) {
                continue;
            }
            // Compute read words from the items about to be consumed.
            let read_words: u64 = match action {
                Action::Fire { method } => {
                    let n = &self.program.nodes[node];
                    n.compiled[method]
                        .triggers
                        .iter()
                        .map(|&(p, _)| n.queues[p].front().map_or(0, |i| i.words()))
                        .sum()
                }
                Action::Forward { .. } => 0,
            };
            let declared: u64 = match action {
                Action::Fire { method } => self.program.nodes[node].compiled[method].cost_cycles,
                Action::Forward { .. } => 1,
            };
            let (emitted, actual) = self.program.nodes[node].execute_with_cost(action);
            // Firing consumed inputs and may have changed private state;
            // the node must be re-planned before it can be skipped again.
            self.mark_dirty(node);
            // Data-dependent-cost kernels report their actual work; running
            // past the declared budget is a runtime resource exception
            // (§VII) recorded per node.
            let cycles = actual.unwrap_or(declared);
            if cycles > declared {
                self.budget_overruns[node] += 1;
            }
            let write_words: u64 = emitted.iter().map(|(_, i)| i.words()).sum();
            let m = &self.config.machine;
            let run_s = cycles as f64 / m.pe_clock_hz;
            let read_s = read_words as f64 * m.read_cost_per_word / m.pe_clock_hz;
            let write_s = write_words as f64 * m.write_cost_per_word / m.pe_clock_hz;
            let dt = run_s + read_s + write_s;
            self.pe_inflight[pe] = Some(Inflight {
                node,
                emitted,
                run_s,
                read_s,
                write_s,
            });
            self.rr[pe] = (idx + 1) % len;
            let t_done = self.now + dt;
            self.push_event(t_done, EventKind::PeDone { pe });
            return Some(node);
        }
        None
    }

    /// True when every destination queue of the action's outputs has room
    /// for this firing's worst-case emissions (2 items of slack).
    fn downstream_space(&self, node: usize, action: Action) -> bool {
        let method = match action {
            Action::Fire { method } | Action::Forward { method, .. } => method,
        };
        let outputs = &self.program.nodes[node].compiled[method].outputs;
        for &port in outputs {
            for &(dn, dp) in &self.program.routes[node][port] {
                if self.program.nodes[dn].queues[dp].len() + 2 > self.config.channel_capacity {
                    return false;
                }
            }
        }
        true
    }
}
