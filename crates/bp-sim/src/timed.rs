//! The timing-accurate functional simulator (§IV-D of the paper).
//!
//! Models kernel execution time (method cycles), data access time (per-word
//! input reads and output writes), channel buffering (bounded queues, one
//! iteration of implicit buffering per port plus configurable slack), and
//! per-PE scheduling (round-robin time multiplexing of resident kernels).
//! Inter-PE communication delay is configurable via
//! [`SimConfig::with_comm`]: under the default [`CommModel::zero`] the
//! engine reproduces the paper's zero-delay network bit for bit, while a
//! nonzero model turns each cross-PE channel push into a *delayed arrival
//! event* (base latency + per-hop distance + per-word serialization)
//! scheduled through the ordinary calendar queue. Delayed channels use
//! sender-side credit flow control: capacity is checked against a local
//! credit counter instead of the receiver's queue, and consuming a delayed
//! item schedules a credit-return event after the same latency — so no
//! send-time decision ever reads receiver state, which is what gives the
//! parallel engine its conservative lookahead (DESIGN.md §11).
//!
//! Application inputs inject samples on a strict schedule derived from their
//! declared rate; an injection that finds a full queue is recorded as a
//! real-time violation. This is the mechanism used to "simulate to verify
//! that the application meets its real-time constraints".
//!
//! Scheduling uses a per-PE *ready set*: a node is marked dirty when an
//! item lands on one of its queues or when it fires, and cleaned when a
//! scan finds it unable to progress. A node whose inputs have not changed
//! cannot have gained a plan, so clean nodes are skipped without
//! re-planning and a PE whose dirty count is zero is dispatched in O(1).
//! The round-robin pointer advances exactly as in a full scan, so the
//! schedule — and therefore every simulation result — is bit-identical to
//! the exhaustive version.
//!
//! The engine itself is [`ShardSim`]: a discrete-event loop over a *set of
//! owned PEs*. The sequential [`TimedSimulator`] runs one shard owning every
//! PE; the multi-threaded [`crate::timed_parallel::ParallelTimedSimulator`]
//! runs one shard per worker over disjoint PE interaction regions (see
//! DESIGN.md §9). Both paths execute the same per-event code, so their
//! results can only differ if shard isolation is violated — which debug
//! assertions on every node access check.

use crate::deadlock::{CapacityBump, DeadlockHop, DeadlockReport, SimOutcome};
use crate::events::{BucketQueue, EventQueue};
use crate::parallel::DisjointSlots;
use crate::runtime::{stuck_report, Action, Program, ProgramTables, RtNode};
use crate::stats::{PeStats, RealTimeVerdict, SimReport};
use crate::trace::{StallCause, Trace, TraceEvent, TraceMeta, TraceOptions, TraceRecorder};
use bp_core::capacity::{derive_channel_capacities, ChannelCapacities};
use bp_core::graph::AppGraph;
use bp_core::item::Item;
use bp_core::kernel::NodeRole;
use bp_core::machine::{CommModel, MachineSpec, Mapping};
use bp_core::token::ControlToken;
use bp_core::{BpError, Result};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Band-1 marker bit for explicit event ordinals (see [`EventQueue::push_ord`]):
/// communication events (arrivals, credit returns) sort after band-0 events
/// (source emissions, PE completions) at equal timestamps, and among
/// themselves by `(stream, sequence)` — both assigned at *creation* time, so
/// the order is identical however the events reach the queue (locally pushed
/// or delivered through a parallel shard inbox).
pub(crate) const BAND1: u64 = 1 << 63;

/// Build the band-1 ordinal for communication stream `stream` (2·chan for
/// arrivals, 2·chan+1 for credit returns — each owned by exactly one shard)
/// at per-stream sequence number `seq`.
#[inline]
pub(crate) fn band1_ord(stream: u64, seq: u32) -> u64 {
    BAND1 | (stream << 32) | seq as u64
}

/// Execution backend for the timed engines.
///
/// Both backends run the *same* discrete-event schedule and must produce
/// bitwise-identical [`SimReport`]s (fingerprints included) and traces; the
/// interpreted engine is the oracle, the compiled one the fast path
/// (DESIGN.md §13). The compiled backend replaces the interpreter's
/// per-firing linear trigger scan and string-keyed dispatch with
/// `bp-codegen`'s direct-threaded routines: mask-based readiness planning,
/// arity-specialized fire closures, and routing/space/credit tables
/// devirtualized into pre-resolved slot indices at simulator-build time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Pick automatically: compiled in release builds, interpreted when
    /// debug assertions are on (so debug runs exercise the oracle).
    #[default]
    Auto,
    /// The original interpreted engine (`RtNode::plan` + `execute_with_cost`).
    Interpreted,
    /// Direct-threaded routines lowered by [`bp_codegen::lower_graph`].
    /// Construction fails if the graph cannot be lowered (a kernel with
    /// more than 64 input ports).
    Compiled,
}

/// Timed simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Target machine.
    pub machine: MachineSpec,
    /// Execution backend (default [`Backend::Auto`]).
    pub backend: Backend,
    /// Inter-PE communication delay model. The default, [`CommModel::zero`],
    /// delivers cross-PE pushes in the same cycle (the paper's §IV-D
    /// simplification) and reproduces every pre-model result bit for bit.
    pub comm: CommModel,
    /// Uniform capacity of each input queue in items.
    /// [`with_channel_capacity`](Self::with_channel_capacity) pins every
    /// channel to one explicit value, overriding both the derivation and
    /// any per-channel plan in [`capacities`](Self::capacities).
    pub channel_capacity: Option<usize>,
    /// Per-channel capacity plan (e.g. from the compiler's buffering pass).
    /// `None` (the default) derives one from the graph being simulated —
    /// the widest-row default of [`derive_channel_capacity`] plus
    /// feedback-aware back-edge overrides
    /// ([`bp_core::capacity::derive_channel_capacities`]).
    pub capacities: Option<ChannelCapacities>,
    /// Frames to push through every application input.
    pub frames: u32,
    /// Event tracing (`None`, the default, records nothing and adds no
    /// per-event work beyond a branch). Tracing is *inert*: it cannot
    /// change the schedule, the [`SimReport`], or its fingerprint — see
    /// [`crate::trace`].
    pub trace: Option<TraceOptions>,
}

impl SimConfig {
    /// Default configuration on the evaluation machine, with the channel
    /// capacity derived per graph (a window-row of slack; see
    /// [`derive_channel_capacity`]).
    pub fn new(frames: u32) -> Self {
        Self {
            machine: MachineSpec::default_eval(),
            backend: Backend::Auto,
            comm: CommModel::zero(),
            channel_capacity: None,
            capacities: None,
            frames,
            trace: None,
        }
    }

    /// Select the execution backend (default [`Backend::Auto`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Use a specific machine.
    pub fn with_machine(mut self, machine: MachineSpec) -> Self {
        self.machine = machine;
        self
    }

    /// Use a specific inter-PE communication delay model.
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Pin one explicit capacity for *every* queue instead of deriving a
    /// plan from the graph. This disables the feedback-aware back-edge
    /// sizing, so a feedback loop whose primed population exceeds what the
    /// pinned value can hold will capacity-deadlock (and be diagnosed by a
    /// [`crate::deadlock::DeadlockReport`]).
    pub fn with_channel_capacity(mut self, items: usize) -> Self {
        self.channel_capacity = Some(items);
        self
    }

    /// Use an explicit per-channel capacity plan (keyed by the graph's
    /// [`bp_core::ChannelId`]s). Ignored when
    /// [`with_channel_capacity`](Self::with_channel_capacity) pinned a
    /// uniform value.
    pub fn with_channel_capacities(mut self, plan: ChannelCapacities) -> Self {
        self.capacities = Some(plan);
        self
    }

    /// Enable deterministic event tracing; retrieve the [`Trace`] via
    /// [`TimedSimulator::run_with_trace`] (or the parallel equivalent).
    pub fn with_trace(mut self, options: TraceOptions) -> Self {
        self.trace = Some(options);
        self
    }
}

/// Derive the per-queue capacity for a graph: enough slack that within-frame
/// burstiness — a windowed kernel receives its row of windows faster than it
/// drains them, catching up during the halo rows — does not register as a
/// missed deadline, while sustained overload still does.
///
/// The slack needed scales with the widest input window row any kernel
/// consumes, so the capacity is that width rounded up to a power of two,
/// with a floor of 64 items (the pre-derivation default; every bundled
/// application's windows are narrower, so they are unaffected).
///
/// This is the *default* every channel gets; feedback back edges are
/// additionally grown to hold their loop's primed population — see
/// [`bp_core::capacity::derive_channel_capacities`], which the simulator
/// applies when no explicit capacity is configured.
pub fn derive_channel_capacity(graph: &AppGraph) -> usize {
    bp_core::capacity::derive_default_capacity(graph)
}

/// What a pending simulator event does when it fires.
#[derive(Clone, Copy, Debug)]
pub(crate) enum EventKind {
    /// Inject the next sample of a source (index into
    /// [`ProgramTables::sources`]).
    SourceEmit {
        /// Global source index.
        source: usize,
    },
    /// A PE finishes its current firing.
    PeDone {
        /// Global PE index.
        pe: usize,
    },
    /// An in-flight item reaches the head of a delayed channel's wire and
    /// lands in the destination queue. Band-1: ordinal `2·chan`, sequenced
    /// by the sender.
    ChannelArrival {
        /// Runtime channel index (into [`Shared::channels`]).
        chan: u32,
    },
    /// A consumed delayed item's buffer slot becomes visible to the sender
    /// again. Band-1: ordinal `2·chan + 1`, sequenced by the receiver.
    CreditReturn {
        /// Runtime channel index (into [`Shared::channels`]).
        chan: u32,
    },
}

/// Resolved per-channel communication parameters. `latency_s > 0` marks the
/// channel *delayed*: pushes become [`EventKind::ChannelArrival`] events and
/// capacity is enforced by sender-side credits. Channels between nodes on
/// the same PE are always direct (local memory), whatever the model.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChannelRt {
    pub(crate) src: usize,
    pub(crate) src_port: usize,
    pub(crate) dst: usize,
    pub(crate) dst_port: usize,
    /// One-way flight time of an item; 0 means direct same-cycle delivery.
    pub(crate) latency_s: f64,
    /// Serialization cost per payload word (store-and-forward: items on one
    /// channel serialize behind each other at this rate).
    pub(crate) ser_per_word_s: f64,
    /// Resolved buffer capacity of this channel in items (the plan default,
    /// or a feedback back-edge override).
    pub(crate) cap: usize,
}

/// Payload of a cross-shard communication message.
pub(crate) enum MsgKind {
    /// An item entering the destination shard's wire.
    Arrival(Item),
    /// A buffer credit returning to the source shard.
    Credit,
}

/// A communication event crossing shards in the parallel engine, delivered
/// through per-shard inboxes between synchronization windows. `(t, ord)`
/// fully determine its queue position, so inbox delivery order is
/// irrelevant to the schedule.
pub(crate) struct OutMsg {
    pub(crate) t: f64,
    pub(crate) ord: u64,
    pub(crate) chan: u32,
    pub(crate) kind: MsgKind,
}

struct Inflight {
    node: usize,
    emitted: Vec<(usize, Item)>,
    run_s: f64,
    read_s: f64,
    write_s: f64,
}

/// One pre-resolved routing destination for the compiled backend: the
/// interpreter's per-push `delayed_chan`/`node_roles` lookups folded into
/// the table at simulator-build time.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RouteDest {
    pub(crate) dn: u32,
    pub(crate) dp: u32,
    /// Delayed channel carrying this edge, or `u32::MAX` for direct
    /// same-cycle delivery into the destination queue.
    pub(crate) chan: u32,
    /// Destination is a sink (EOF arrival timestamps are recorded).
    pub(crate) sink: bool,
}

/// One pre-resolved downstream-space check for the compiled backend — the
/// flattened form of the interpreter's `downstream_space` scan for one
/// method, in identical order.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SpaceCheck {
    /// Delayed edge: the sender-side credit count must be ≥ 2.
    Credit {
        /// Channel index into [`Shared::channels`].
        chan: u32,
    },
    /// Direct edge: the destination queue must have 2 items of headroom.
    Queue { dn: u32, dp: u32, cap: u32 },
}

/// Everything the compiled backend precomputes per graph + mapping +
/// config: the lowered program (graph-only facts) plus the devirtualized
/// routing/space/credit/cost tables (mapping- and machine-dependent).
/// Read-only at run time and shared by all shards.
pub(crate) struct CompiledTables {
    /// The direct-threaded program: per-node masks and fire routines.
    pub(crate) program: bp_codegen::ThreadedProgram,
    /// `dests[node][out_port]` — fused destination records in route order.
    pub(crate) dests: Vec<Vec<Vec<RouteDest>>>,
    /// `space[node][method]` — flattened downstream-space checks.
    pub(crate) space: Vec<Vec<Vec<SpaceCheck>>>,
    /// `run_s[node][method]` — declared cost in seconds, precomputed by the
    /// same `cycles as f64 / pe_clock_hz` the interpreter evaluates per
    /// firing (identical operation ⇒ identical bits). Used only when the
    /// behavior's actual cycles equal the declared cost; otherwise the
    /// division runs live, exactly like the interpreter.
    pub(crate) run_s: Vec<Vec<f64>>,
    /// `credit_chans[node][method]` — delayed channels to credit after a
    /// firing, in trigger order (duplicate trigger ports preserved).
    pub(crate) credit_chans: Vec<Vec<Vec<u32>>>,
    /// Declared seconds of a token forward (1 cycle), precomputed once.
    pub(crate) forward_run_s: f64,
    /// `method_base[node] + method` is the flat per-method slot used to
    /// index the shard's read/write-cost memo cache.
    pub(crate) method_base: Vec<u32>,
    /// Total method slots across all nodes (the memo cache's length).
    pub(crate) num_method_slots: usize,
}

/// Per-method memo of the last read/write word-cost conversions (compiled
/// backend). Word counts are data-dependent but almost always repeat
/// (window shapes are static per port), and IEEE-754 division is
/// deterministic, so reusing the quotient computed for the *same* word
/// count is bitwise identical to the interpreter's per-firing division —
/// it just skips two `f64` divides on the hot path.
#[derive(Clone, Copy)]
struct RwMemo {
    read_words: u64,
    read_s: f64,
    write_words: u64,
    write_s: f64,
}

impl Default for RwMemo {
    fn default() -> Self {
        // `u64::MAX` words can never be observed (it would overflow every
        // window allocation), so the first firing always misses.
        Self {
            read_words: u64::MAX,
            read_s: 0.0,
            write_words: u64::MAX,
            write_s: 0.0,
        }
    }
}

/// Everything the event loop reads but never writes, shared by all shards:
/// routing/pacing tables, the mapping, and resolved configuration.
pub(crate) struct Shared {
    pub(crate) tables: ProgramTables,
    /// Distinct upstream producer nodes per node (for dispatch waves).
    /// Covers *direct* channels only: a delayed channel's producer is
    /// re-dispatched by its [`EventKind::CreditReturn`] instead, so freeing
    /// space synchronously never reaches across a delayed (possibly
    /// cross-shard) edge.
    pub(crate) upstream: Vec<Vec<usize>>,
    /// Every graph channel with its resolved communication parameters, in
    /// graph channel-slot order.
    pub(crate) channels: Vec<ChannelRt>,
    /// `chan_into[node][in_port]` is the channel feeding that port (graph
    /// validation guarantees at most one).
    pub(crate) chan_into: Vec<Vec<Option<u32>>>,
    /// `cap_into[node][in_port]` is the resolved capacity of the queue on
    /// that port (the feeding channel's capacity; the plan default for
    /// unconnected ports), read on every space check.
    pub(crate) cap_into: Vec<Vec<usize>>,
    /// Per node, the `(in_port, chan)` pairs fed by *delayed* channels —
    /// the ports whose consumption must return credits.
    pub(crate) delayed_in_ports: Vec<Vec<(usize, u32)>>,
    /// True when any channel is delayed; false short-circuits every
    /// comm-model branch so the zero model costs one load per routing fan-out.
    pub(crate) any_delayed: bool,
    pub(crate) pe_of_node: Vec<usize>,
    pub(crate) residents: Vec<Vec<usize>>,
    pub(crate) node_roles: Vec<NodeRole>,
    pub(crate) machine: MachineSpec,
    pub(crate) frames: u32,
    pub(crate) required_rate_hz: f64,
    pub(crate) num_sinks: usize,
    pub(crate) trace: Option<TraceOptions>,
    /// Direct-threaded execution tables; `None` runs the interpreter.
    pub(crate) compiled: Option<CompiledTables>,
}

/// Instantiate `graph` under `mapping` and resolve `config` into the node
/// instances plus the read-only [`Shared`] tables both simulators consume.
pub(crate) fn build_shared(
    graph: &AppGraph,
    mapping: &Mapping,
    config: SimConfig,
) -> Result<(Vec<RtNode>, Shared)> {
    if mapping.pe_of_node.len() != graph.node_count() {
        return Err(BpError::Simulation(format!(
            "mapping covers {} nodes but graph has {}",
            mapping.pe_of_node.len(),
            graph.node_count()
        )));
    }
    // Resolve the capacity plan: an explicit uniform pin wins, then an
    // explicit per-channel plan, then the feedback-aware derivation.
    let plan = match (config.channel_capacity, config.capacities) {
        (Some(uniform), _) => ChannelCapacities::uniform(uniform),
        (None, Some(plan)) => plan,
        (None, None) => derive_channel_capacities(graph),
    };
    let program = Program::instantiate(graph)?;
    let (nodes, tables) = program.split();
    let n = nodes.len();
    // Resolve every channel's communication parameters once. Same-PE
    // channels are local memory (latency 0) regardless of the model.
    let mut channels = Vec::new();
    let mut chan_into: Vec<Vec<Option<u32>>> =
        nodes.iter().map(|rt| vec![None; rt.queues.len()]).collect();
    let mut cap_into: Vec<Vec<usize>> = nodes
        .iter()
        .map(|rt| vec![plan.default; rt.queues.len()])
        .collect();
    let mut delayed_in_ports = vec![Vec::new(); n];
    for (cid, c) in graph.channels() {
        let (src, dst) = (c.src.node.0, c.dst.node.0);
        let latency_s = config.comm.channel_latency_s(
            mapping.pe_of_node[src],
            mapping.pe_of_node[dst],
            mapping.num_pes,
        );
        let delayed = latency_s > 0.0;
        let (src_port, dst_port) = (c.src.port, c.dst.port);
        let chan = channels.len() as u32;
        let cap = plan.capacity(cid);
        channels.push(ChannelRt {
            src,
            src_port,
            dst,
            dst_port,
            latency_s,
            ser_per_word_s: if delayed { config.comm.per_word_s } else { 0.0 },
            cap,
        });
        chan_into[dst][dst_port] = Some(chan);
        cap_into[dst][dst_port] = cap;
        if delayed {
            delayed_in_ports[dst].push((dst_port, chan));
        }
    }
    let any_delayed = channels.iter().any(|c| c.latency_s > 0.0);
    // Dispatch waves walk upstream over direct channels only; delayed
    // producers are woken by credit returns instead.
    let mut upstream = vec![Vec::new(); n];
    for c in &channels {
        if c.latency_s <= 0.0 && !upstream[c.dst].contains(&c.src) {
            upstream[c.dst].push(c.src);
        }
    }
    let node_roles: Vec<NodeRole> = nodes.iter().map(|rt| rt.spec.role).collect();
    // Lower to the direct-threaded backend when requested (or in release
    // builds under `Auto`). All tables mirror an interpreted scan exactly;
    // see DESIGN.md §13 for the invariants.
    let want_compiled = match config.backend {
        Backend::Interpreted => false,
        Backend::Compiled => true,
        Backend::Auto => !cfg!(debug_assertions),
    };
    let compiled = if want_compiled {
        let program = match bp_codegen::lower_graph(graph) {
            Ok(p) => Some(p),
            // `Auto` falls back to the interpreter on an unlowerable graph;
            // an explicit request surfaces the error.
            Err(e) if config.backend == Backend::Compiled => return Err(e),
            Err(_) => None,
        };
        program.map(|program| {
            let delayed_chan = |dn: usize, dp: usize| -> Option<u32> {
                if !any_delayed {
                    return None;
                }
                chan_into[dn][dp].filter(|&c| channels[c as usize].latency_s > 0.0)
            };
            let dests: Vec<Vec<Vec<RouteDest>>> = (0..n)
                .map(|node| {
                    tables.routes[node]
                        .iter()
                        .map(|port_routes| {
                            port_routes
                                .iter()
                                .map(|&(dn, dp)| RouteDest {
                                    dn: dn as u32,
                                    dp: dp as u32,
                                    chan: delayed_chan(dn, dp).unwrap_or(u32::MAX),
                                    sink: node_roles[dn] == NodeRole::Sink,
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let clock = config.machine.pe_clock_hz;
            let mut space = Vec::with_capacity(n);
            let mut run_s = Vec::with_capacity(n);
            let mut credit_chans = Vec::with_capacity(n);
            for (node, tn) in program.nodes.iter().enumerate() {
                let mut node_space = Vec::with_capacity(tn.methods.len());
                let mut node_run_s = Vec::with_capacity(tn.methods.len());
                let mut node_credits = Vec::with_capacity(tn.methods.len());
                for tm in &tn.methods {
                    let mut checks = Vec::new();
                    for &port in &tm.outputs {
                        for &(dn, dp) in &tables.routes[node][port] {
                            checks.push(match delayed_chan(dn, dp) {
                                Some(chan) => SpaceCheck::Credit { chan },
                                None => SpaceCheck::Queue {
                                    dn: dn as u32,
                                    dp: dp as u32,
                                    cap: cap_into[dn][dp] as u32,
                                },
                            });
                        }
                    }
                    node_space.push(checks);
                    node_run_s.push(tm.cost_cycles as f64 / clock);
                    node_credits.push(
                        tm.trigger_ports
                            .iter()
                            .filter_map(|&p| {
                                delayed_in_ports[node]
                                    .iter()
                                    .find(|&&(dp, _)| dp == p)
                                    .map(|&(_, chan)| chan)
                            })
                            .collect(),
                    );
                }
                space.push(node_space);
                run_s.push(node_run_s);
                credit_chans.push(node_credits);
            }
            let mut method_base = Vec::with_capacity(n);
            let mut num_method_slots = 0usize;
            for tn in &program.nodes {
                method_base.push(num_method_slots as u32);
                num_method_slots += tn.methods.len();
            }
            CompiledTables {
                program,
                dests,
                space,
                run_s,
                credit_chans,
                forward_run_s: 1.0 / clock,
                method_base,
                num_method_slots,
            }
        })
    } else {
        None
    };
    let num_sinks = node_roles
        .iter()
        .filter(|r| **r == NodeRole::Sink)
        .count()
        .max(1);
    let required_rate_hz = graph
        .sources()
        .iter()
        .map(|s| s.rate_hz)
        .fold(0.0f64, f64::max);
    let shared = Shared {
        tables,
        upstream,
        channels,
        chan_into,
        cap_into,
        delayed_in_ports,
        any_delayed,
        pe_of_node: mapping.pe_of_node.clone(),
        residents: mapping.residents(),
        node_roles,
        machine: config.machine,
        frames: config.frames,
        required_rate_hz,
        num_sinks,
        trace: config.trace,
        compiled,
    };
    Ok((nodes, shared))
}

/// What one processed event did, recorded so the parallel coordinator can
/// replay the *global* heap dynamics (event pop order and sequence-number
/// assignment) without re-simulating: how many events it pushed (records in
/// [`ShardLog::pushes`]), and how many sink end-of-frames and frame
/// starts it recorded (their timestamps all equal `t`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct LogEntry {
    pub(crate) t: f64,
    pub(crate) pushes: u32,
    pub(crate) eofs: u32,
    pub(crate) starts: u32,
}

/// One journaled event push, consumed sequentially by the parallel replay.
/// `ord == 0` is a band-0 push (the replay heap assigns its insertion
/// counter, reproducing the sequential engine's counter stream); a nonzero
/// `ord` is a band-1 communication event carrying its creation-time ordinal.
/// `target` is the shard whose journal the replayed event consumes — the
/// *destination* shard for cross-shard communication.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PushRec {
    pub(crate) t: f64,
    pub(crate) ord: u64,
    pub(crate) target: u32,
}

/// Per-shard event journal for deterministic merging (DESIGN.md §9, §11).
#[derive(Default)]
pub(crate) struct ShardLog {
    /// One entry per owned startup const firing, in global `consts` order.
    pub(crate) init: Vec<LogEntry>,
    /// One entry per popped event, in shard pop order.
    pub(crate) main: Vec<LogEntry>,
    /// Every push, in push order, consumed sequentially by the replay.
    pub(crate) pushes: Vec<PushRec>,
}

/// Owned results of one shard's run, extracted once the event loop is done
/// so the node slots can be reclaimed.
pub(crate) struct ShardOutcome {
    pub(crate) stats: Vec<PeStats>,
    pub(crate) node_busy: Vec<f64>,
    pub(crate) violations: u64,
    pub(crate) sink_eof_times: Vec<f64>,
    pub(crate) frame_start_times: Vec<f64>,
    pub(crate) custom_token_emissions: Vec<u64>,
    pub(crate) budget_overruns: Vec<u64>,
    pub(crate) node_max_queue: Vec<usize>,
    /// Final sender-side credit count per channel (capacity minus
    /// outstanding items); only entries for channels whose *source* the
    /// shard owns are meaningful.
    pub(crate) credits: Vec<i64>,
    pub(crate) now: f64,
    pub(crate) log: Option<ShardLog>,
    pub(crate) trace: Option<TraceRecorder>,
}

/// The discrete-event engine for one shard: a set of PEs (and their resident
/// nodes) that never interact with any other shard's. The sequential
/// simulator is the single-shard special case. All state vectors are
/// globally indexed; entries for PEs/nodes the shard does not own stay at
/// their initial values and are ignored during merging.
pub(crate) struct ShardSim<'a> {
    shared: &'a Shared,
    nodes: &'a DisjointSlots<RtNode>,
    shard: usize,
    shard_of_pe: &'a [usize],
    rr: Vec<usize>,
    pe_inflight: Vec<Option<Inflight>>,
    /// Ready-set state: `dirty[node]` is true when the node's inputs or
    /// private state changed since its last failed plan; a clean node is
    /// guaranteed unable to fire and is skipped without re-planning.
    dirty: Vec<bool>,
    /// Number of dirty residents per PE; zero means the PE has no work.
    dirty_count: Vec<usize>,
    events: BucketQueue<EventKind>,
    now: f64,
    stats: Vec<PeStats>,
    node_busy: Vec<f64>,
    violations: u64,
    sink_eof_times: Vec<f64>,
    /// Injection time of each frame's first sample (global source 0 only).
    frame_start_times: Vec<f64>,
    /// Custom-token emissions per node, for §II-C rate-bound checking.
    custom_token_emissions: Vec<u64>,
    source_progress: Vec<u64>,
    budget_overruns: Vec<u64>,
    node_max_queue: Vec<usize>,
    /// Sender-side credit count per channel (delayed channels only; direct
    /// channels read the receiver queue instead). Starts at capacity; a
    /// send spends one, a [`EventKind::CreditReturn`] restores one. May go
    /// negative under source overfill, exactly mirroring the direct path's
    /// behavior of counting a violation but still injecting.
    credits: Vec<i64>,
    /// Store-and-forward: when each delayed channel's wire is free again.
    busy_until: Vec<f64>,
    /// In-flight items per delayed channel, in send order; arrivals pop
    /// from the front (arrival times are non-decreasing per channel, and
    /// equal-time arrivals pop in ordinal = send order).
    wire: Vec<VecDeque<Item>>,
    /// Next arrival sequence number per channel (owned by the src shard).
    send_seq: Vec<u32>,
    /// Next credit-return sequence number per channel (owned by the dst shard).
    credit_seq: Vec<u32>,
    /// Cross-shard communication inboxes (parallel engine only); indexed by
    /// destination shard.
    links: Option<&'a [Mutex<Vec<OutMsg>>]>,
    /// Earliest timestamp of any event this shard emitted into another
    /// shard's inbox since the last [`take_min_out`](Self::take_min_out);
    /// the coordinator folds it into the global window bound so in-flight
    /// messages hold the window back exactly like queued events.
    min_out: f64,
    log: Option<ShardLog>,
    /// Event recorder, present only when [`SimConfig::trace`] is set.
    /// Recording is read-only with respect to simulation state, so its
    /// presence cannot perturb the schedule.
    trace: Option<TraceRecorder>,
    /// Last recorded stall cause per PE (`None` = running); transitions
    /// are traced only on change. Unused when tracing is off.
    pe_stall: Vec<Option<StallCause>>,
    /// True while handling one loggable unit (a const firing or a popped
    /// event); gates push recording so source seeds are not journaled.
    in_entry: bool,
    entry_push_base: usize,
    entry_eof_base: usize,
    entry_start_base: usize,
    /// Compiled backend only: bit `p` set when the node's input queue `p`
    /// currently has a window at its head. Maintained incrementally at
    /// every queue mutation; [`bp_codegen::head_masks`] is the oracle
    /// (checked before every compiled plan under debug assertions).
    head_data: Vec<u64>,
    /// As [`head_data`](Self::head_data), for control tokens.
    head_ctrl: Vec<u64>,
    /// Compiled backend only: recycled routing scratch (the interpreter
    /// allocates a fresh `touched` vector per routed firing).
    touched_buf: Vec<usize>,
    /// Compiled backend only: recycled dispatch worklist for the
    /// single-PE waves of arrival/credit events.
    wave_buf: Vec<usize>,
    /// Compiled backend only: one bit per PE, set while the PE sits in the
    /// current dispatch worklist — O(1) membership for the dedup the
    /// interpreter does with `Vec::contains`. Insertions set the bit, pops
    /// clear it, so the mask is all-zero between waves (the unconditional
    /// own-PE push in `handle_pe_done` bypasses the mask; pops tolerate
    /// the resulting duplicate exactly as the interpreter does).
    wave_mask: Vec<u64>,
    /// Compiled backend only: per-method [`RwMemo`] slots (flat-indexed
    /// via `CompiledTables::method_base`).
    rw_memo: Vec<RwMemo>,
    /// Compiled backend only: true when the node's last plan succeeded but
    /// `space_ok` declined it, so it is waiting on downstream consumption.
    /// The untraced dispatcher wakes upstream PEs only for flagged nodes —
    /// a firing's consumption is the *only* new information an upstream
    /// wake carries (data arrivals wake destinations through the routing
    /// path, and a fireable-with-space resident was already started, or
    /// its PE is busy and revisited at `PeDone`). Conservatively cleared
    /// only when the node starts; stale flags cost a no-op pop, never a
    /// missed wake.
    space_waiting: Vec<bool>,
}

impl<'a> ShardSim<'a> {
    /// `shard_of_pe` assigns every PE to a shard; this instance runs the
    /// PEs of shard `shard`. Pass `record = true` to journal event-loop
    /// dynamics for the parallel merge, and `links = Some(inboxes)` to
    /// route cross-shard communication (sequential runs pass `None`; with
    /// one shard every channel is internal and the inboxes are never used).
    pub(crate) fn new(
        shared: &'a Shared,
        nodes: &'a DisjointSlots<RtNode>,
        shard: usize,
        shard_of_pe: &'a [usize],
        record: bool,
        links: Option<&'a [Mutex<Vec<OutMsg>>]>,
    ) -> Self {
        let n = nodes.len();
        let num_pes = shared.residents.len();
        let num_chans = shared.channels.len();
        // One PE cycle per bucket: firing durations are cycle counts plus
        // fractional word costs, so event times cluster at this scale.
        let quantum = 1.0 / shared.machine.pe_clock_hz;
        Self {
            shared,
            nodes,
            shard,
            shard_of_pe,
            rr: vec![0; num_pes],
            pe_inflight: (0..num_pes).map(|_| None).collect(),
            dirty: vec![false; n],
            dirty_count: vec![0; num_pes],
            events: BucketQueue::new(quantum),
            now: 0.0,
            stats: vec![PeStats::default(); num_pes],
            node_busy: vec![0.0; n],
            violations: 0,
            sink_eof_times: Vec::new(),
            frame_start_times: Vec::new(),
            custom_token_emissions: vec![0; n],
            source_progress: vec![0; shared.tables.sources.len()],
            budget_overruns: vec![0; n],
            node_max_queue: vec![0; n],
            credits: shared.channels.iter().map(|c| c.cap as i64).collect(),
            busy_until: vec![0.0; num_chans],
            wire: (0..num_chans).map(|_| VecDeque::new()).collect(),
            send_seq: vec![0; num_chans],
            credit_seq: vec![0; num_chans],
            links,
            min_out: f64::INFINITY,
            log: record.then(ShardLog::default),
            trace: shared.trace.map(TraceRecorder::new),
            pe_stall: vec![None; num_pes],
            in_entry: false,
            entry_push_base: 0,
            entry_eof_base: 0,
            entry_start_base: 0,
            head_data: vec![0; n],
            head_ctrl: vec![0; n],
            touched_buf: Vec::new(),
            wave_buf: Vec::new(),
            wave_mask: vec![0; num_pes.div_ceil(64)],
            rw_memo: vec![
                RwMemo::default();
                shared.compiled.as_ref().map_or(0, |ct| ct.num_method_slots)
            ],
            space_waiting: vec![false; n],
        }
    }

    /// Wave-membership test-and-set for the compiled dispatcher's O(1)
    /// worklist dedup (the interpreter uses `Vec::contains`; same
    /// predicate). Returns `true` when `pe` was not yet a member.
    #[inline]
    fn wave_test_set(&mut self, pe: usize) -> bool {
        let (w, b) = (pe / 64, 1u64 << (pe % 64));
        let newly = self.wave_mask[w] & b == 0;
        self.wave_mask[w] |= b;
        newly
    }

    #[inline]
    fn wave_clear(&mut self, pe: usize) {
        self.wave_mask[pe / 64] &= !(1u64 << (pe % 64));
    }

    #[inline]
    fn owns_node(&self, node: usize) -> bool {
        self.shard_of_pe[self.shared.pe_of_node[node]] == self.shard
    }

    /// Borrow an owned node. The disjointness contract makes this sound:
    /// every node belongs to exactly one shard and only its shard's worker
    /// ever reaches it (checked here in debug builds).
    #[inline]
    fn node(&self, i: usize) -> &RtNode {
        debug_assert!(
            self.owns_node(i),
            "shard {} touched node {} owned by shard {}",
            self.shard,
            i,
            self.shard_of_pe[self.shared.pe_of_node[i]]
        );
        // SAFETY: per the shard plan this worker is the unique owner of
        // node `i` (debug-asserted above), and the borrow is statement-scoped.
        unsafe { self.nodes.get(i) }
    }

    /// Mutably borrow an owned node. Same contract as [`node`](Self::node);
    /// callers keep the borrow statement-scoped so two live borrows of one
    /// slot cannot exist.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    fn node_mut(&self, i: usize) -> &mut RtNode {
        debug_assert!(
            self.owns_node(i),
            "shard {} touched node {} owned by shard {}",
            self.shard,
            i,
            self.shard_of_pe[self.shared.pe_of_node[i]]
        );
        // SAFETY: as in `node`, ownership is exclusive and borrows are
        // statement-scoped.
        unsafe { self.nodes.get_mut(i) }
    }

    /// Journal one push for the parallel replay (no-op when not recording
    /// or outside a loggable entry, i.e. for source seeds).
    #[inline]
    fn journal_push(&mut self, t: f64, ord: u64, target: u32) {
        if self.in_entry {
            if let Some(log) = self.log.as_mut() {
                log.pushes.push(PushRec { t, ord, target });
            }
        }
    }

    /// Push a band-0 event (source emission / PE completion) on this shard.
    fn push_event(&mut self, t: f64, kind: EventKind) {
        self.journal_push(t, 0, self.shard as u32);
        self.events.push(t, kind);
    }

    /// Push a band-1 communication event local to this shard.
    fn push_event_ord(&mut self, t: f64, ord: u64, kind: EventKind) {
        self.journal_push(t, ord, self.shard as u32);
        self.events.push_ord(t, ord, kind);
    }

    fn begin_entry(&mut self) {
        if let Some(log) = self.log.as_ref() {
            self.in_entry = true;
            self.entry_push_base = log.pushes.len();
            self.entry_eof_base = self.sink_eof_times.len();
            self.entry_start_base = self.frame_start_times.len();
        }
    }

    fn end_entry(&mut self, t: f64, init: bool) {
        // The recorder's per-entry counts mirror the journal's entries so
        // the parallel merge can interleave shard streams in replay order.
        if let Some(trace) = self.trace.as_mut() {
            trace.end_entry(init);
        }
        let (eofs, starts) = (
            (self.sink_eof_times.len() - self.entry_eof_base) as u32,
            (self.frame_start_times.len() - self.entry_start_base) as u32,
        );
        if let Some(log) = self.log.as_mut() {
            self.in_entry = false;
            let entry = LogEntry {
                t,
                pushes: (log.pushes.len() - self.entry_push_base) as u32,
                eofs,
                starts,
            };
            if init {
                log.init.push(entry);
            } else {
                log.main.push(entry);
            }
        }
    }

    /// Mark a node as possibly able to fire. Sources are paced externally
    /// and never enter the ready set.
    #[inline]
    fn mark_dirty(&mut self, node: usize) {
        if !self.dirty[node] && self.shared.node_roles[node] != NodeRole::Source {
            self.dirty[node] = true;
            self.dirty_count[self.shared.pe_of_node[node]] += 1;
        }
    }

    #[inline]
    fn clear_dirty(&mut self, node: usize) {
        if self.dirty[node] {
            self.dirty[node] = false;
            self.dirty_count[self.shared.pe_of_node[node]] -= 1;
        }
    }

    /// Run this shard's portion of the simulation to quiescence: fire the
    /// owned startup constants (in global order), seed the owned sources,
    /// and drain the event queue.
    pub(crate) fn run(&mut self) {
        self.init();
        self.run_window(f64::INFINITY);
    }

    /// Fire the owned startup constants (in global order) and seed the
    /// owned sources — everything that happens before the first event pop.
    pub(crate) fn init(&mut self) {
        // Constants fire at t = 0, before any source sample.
        for ci in 0..self.shared.tables.consts.len() {
            let (node, method) = self.shared.tables.consts[ci];
            if !self.owns_node(node) {
                continue;
            }
            self.begin_entry();
            self.record_untriggered_begin(node, method);
            let emitted = self.node_mut(node).fire_untriggered(method);
            // The firing may change the node's private state (e.g. a
            // feedback primer becoming ready), so re-plan it.
            self.mark_dirty(node);
            let touched = self.route_any(node, emitted);
            self.record_untriggered_end(node);
            self.dispatch_any(touched);
            self.end_entry(0.0, true);
        }
        for s in 0..self.shared.tables.sources.len() {
            if self.owns_node(self.shared.tables.sources[s].node) {
                self.push_event(0.0, EventKind::SourceEmit { source: s });
            }
        }
    }

    /// Process every pending event with `t < end`, in `(t, ord)` order.
    /// Returns the timestamp of the first unprocessed event, or `+inf` when
    /// the queue drained. The sequential engine calls this once with
    /// `end = +inf`; the parallel engine calls it per synchronization
    /// window with the coordinator's conservative bound.
    pub(crate) fn run_window(&mut self, end: f64) -> f64 {
        if self.shared.compiled.is_some() {
            // Monomorphize the compiled loop on whether any observer
            // (trace recorder or replay journal) is attached: the untraced
            // instantiation compiles every recording branch out of the
            // firing hot path.
            if self.trace.is_some() || self.log.is_some() {
                self.run_window_compiled::<true>(end)
            } else {
                self.run_window_compiled::<false>(end)
            }
        } else {
            self.run_window_interp(end)
        }
    }

    /// Interpreted event loop (the oracle path; see `run_window`).
    fn run_window_interp(&mut self, end: f64) -> f64 {
        while let Some(ev) = self.events.pop() {
            if ev.t >= end {
                // Past the window: put it back (re-insertion keeps its
                // original `(t, seq)` key, so nothing is reordered).
                self.events.push_ord(ev.t, ev.seq, ev.payload);
                return ev.t;
            }
            self.now = ev.t;
            self.begin_entry();
            match ev.payload {
                EventKind::SourceEmit { source } => self.handle_source_emit(source),
                EventKind::PeDone { pe } => self.handle_pe_done(pe),
                EventKind::ChannelArrival { chan } => self.handle_channel_arrival(chan),
                EventKind::CreditReturn { chan } => self.handle_credit_return(chan),
            }
            self.end_entry(ev.t, false);
        }
        f64::INFINITY
    }

    /// Compiled event loop, monomorphized over observer presence (`OBS`).
    /// With `OBS = false` (no trace, no journal — the sequential
    /// non-record configuration) entry bracketing, journaling, and every
    /// trace branch in the handlers fold away at compile time. The two
    /// instantiations process events identically; `OBS` only gates code
    /// that is dynamically dead in the configuration that selects it.
    fn run_window_compiled<const OBS: bool>(&mut self, end: f64) -> f64 {
        let ct = self
            .shared
            .compiled
            .as_ref()
            .expect("compiled loop without tables");
        while let Some(ev) = self.events.pop() {
            if ev.t >= end {
                self.events.push_ord(ev.t, ev.seq, ev.payload);
                return ev.t;
            }
            self.now = ev.t;
            if OBS {
                self.begin_entry();
            }
            match ev.payload {
                EventKind::SourceEmit { source } => {
                    self.handle_source_emit_compiled::<OBS>(source, ct);
                }
                EventKind::PeDone { pe } => {
                    self.handle_pe_done_compiled::<OBS>(pe, ct);
                }
                EventKind::ChannelArrival { chan } => self.handle_channel_arrival(chan),
                EventKind::CreditReturn { chan } => self.handle_credit_return(chan),
            }
            if OBS {
                self.end_entry(ev.t, false);
            }
        }
        f64::INFINITY
    }

    /// Timestamp of this shard's earliest pending event (`+inf` when idle),
    /// without processing it.
    pub(crate) fn next_pending(&mut self) -> f64 {
        match self.events.pop() {
            Some(ev) => {
                let t = ev.t;
                self.events.push_ord(ev.t, ev.seq, ev.payload);
                t
            }
            None => f64::INFINITY,
        }
    }

    /// Move everything other shards sent us into the local event queue.
    /// Not journaled: the *sender* journals cross-shard pushes (with this
    /// shard as target), preserving the global push stream.
    pub(crate) fn drain_inbox(&mut self) {
        let Some(links) = self.links else { return };
        let msgs = std::mem::take(&mut *links[self.shard].lock().unwrap());
        for m in msgs {
            match m.kind {
                MsgKind::Arrival(item) => {
                    self.wire[m.chan as usize].push_back(item);
                    self.events
                        .push_ord(m.t, m.ord, EventKind::ChannelArrival { chan: m.chan });
                }
                MsgKind::Credit => {
                    self.events
                        .push_ord(m.t, m.ord, EventKind::CreditReturn { chan: m.chan });
                }
            }
        }
    }

    /// Earliest timestamp this shard sent to another shard's inbox since
    /// the last call (`+inf` if none); resets the accumulator.
    pub(crate) fn take_min_out(&mut self) -> f64 {
        std::mem::replace(&mut self.min_out, f64::INFINITY)
    }

    /// Extract the owned results, releasing the borrows on the node slots.
    pub(crate) fn into_outcome(self) -> ShardOutcome {
        ShardOutcome {
            stats: self.stats,
            node_busy: self.node_busy,
            violations: self.violations,
            sink_eof_times: self.sink_eof_times,
            frame_start_times: self.frame_start_times,
            custom_token_emissions: self.custom_token_emissions,
            budget_overruns: self.budget_overruns,
            node_max_queue: self.node_max_queue,
            credits: self.credits,
            now: self.now,
            log: self.log,
            trace: self.trace,
        }
    }

    /// Trace a zero-cost untriggered (source/const) firing: the engine
    /// charges it no PE time, so it is recorded as a begin/end pair at the
    /// current instant, bracketing its routing effects.
    fn record_untriggered_begin(&mut self, node: usize, method: usize) {
        let (t, pe) = (self.now, self.shared.pe_of_node[node] as u32);
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent::FiringBegin {
                t,
                node: node as u32,
                method: method as u32,
                pe,
                cycles: 0,
            });
        }
    }

    fn record_untriggered_end(&mut self, node: usize) {
        let (t, pe) = (self.now, self.shared.pe_of_node[node] as u32);
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent::FiringEnd {
                t,
                node: node as u32,
                pe,
            });
        }
    }

    fn handle_source_emit(&mut self, source: usize) {
        let s = self.shared.tables.sources[source];
        if source == 0 && self.source_progress[source].is_multiple_of(s.frame.area()) {
            self.frame_start_times.push(self.now);
        }
        // Check capacity at the destinations before injecting; a full queue
        // at the scheduled time is a missed deadline (counted once per
        // injection, however many destinations are saturated). Delayed
        // destinations are judged by the sender-side credit count — the
        // receiver queue may be remote.
        let full = self.shared.tables.routes[s.node][0]
            .iter()
            .any(|&(dn, dp)| match self.delayed_chan(dn, dp) {
                Some(chan) => self.credits[chan as usize] <= 0,
                None => self.node(dn).queues[dp].len() >= self.shared.cap_into[dn][dp],
            });
        if full {
            self.violations += 1;
        }
        self.record_untriggered_begin(s.node, s.method);
        let emitted = self.node_mut(s.node).fire_untriggered(s.method);
        let touched = self.route_any(s.node, emitted);
        self.record_untriggered_end(s.node);
        self.dispatch_any(touched);

        self.source_progress[source] += 1;
        let total = s.frame.area() * self.shared.frames as u64;
        if self.source_progress[source] < total {
            let period = 1.0 / (s.rate_hz * s.frame.area() as f64);
            let t_next = self.source_progress[source] as f64 * period;
            self.push_event(t_next, EventKind::SourceEmit { source });
        }
    }

    fn handle_pe_done(&mut self, pe: usize) {
        let inflight = self.pe_inflight[pe]
            .take()
            .expect("PeDone without inflight");
        self.stats[pe].run += inflight.run_s;
        self.stats[pe].read += inflight.read_s;
        self.stats[pe].write += inflight.write_s;
        self.node_busy[inflight.node] += inflight.run_s + inflight.read_s + inflight.write_s;
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent::FiringEnd {
                t: self.now,
                node: inflight.node as u32,
                pe: pe as u32,
            });
        }
        let mut touched = self.route_any(inflight.node, inflight.emitted);
        touched.push(pe);
        self.dispatch_any(touched);
    }

    /// Compiled [`handle_source_emit`](Self::handle_source_emit): routing
    /// and dispatch go straight to the monomorphized paths instead of
    /// re-testing the backend per call.
    fn handle_source_emit_compiled<const OBS: bool>(&mut self, source: usize, ct: &CompiledTables) {
        let s = self.shared.tables.sources[source];
        if source == 0 && self.source_progress[source].is_multiple_of(s.frame.area()) {
            self.frame_start_times.push(self.now);
        }
        let full = self.shared.tables.routes[s.node][0]
            .iter()
            .any(|&(dn, dp)| match self.delayed_chan(dn, dp) {
                Some(chan) => self.credits[chan as usize] <= 0,
                None => self.node(dn).queues[dp].len() >= self.shared.cap_into[dn][dp],
            });
        if full {
            self.violations += 1;
        }
        if OBS {
            self.record_untriggered_begin(s.node, s.method);
        }
        let emitted = self.node_mut(s.node).fire_untriggered_fast(s.method);
        let mut touched = std::mem::take(&mut self.touched_buf);
        touched.clear();
        self.route_compiled::<OBS>(s.node, emitted, ct, &mut touched);
        if OBS {
            self.record_untriggered_end(s.node);
        }
        self.dispatch_wave_compiled::<OBS>(&mut touched, ct);
        self.touched_buf = touched;

        self.source_progress[source] += 1;
        let total = s.frame.area() * self.shared.frames as u64;
        if self.source_progress[source] < total {
            let period = 1.0 / (s.rate_hz * s.frame.area() as f64);
            let t_next = self.source_progress[source] as f64 * period;
            if OBS {
                self.push_event(t_next, EventKind::SourceEmit { source });
            } else {
                self.events.push(t_next, EventKind::SourceEmit { source });
            }
        }
    }

    /// Compiled [`handle_pe_done`](Self::handle_pe_done); the own-PE push
    /// stays unconditional (bypassing the wave mask) exactly like the
    /// interpreter's `touched.push(pe)`.
    fn handle_pe_done_compiled<const OBS: bool>(&mut self, pe: usize, ct: &CompiledTables) {
        let inflight = self.pe_inflight[pe]
            .take()
            .expect("PeDone without inflight");
        self.stats[pe].run += inflight.run_s;
        self.stats[pe].read += inflight.read_s;
        self.stats[pe].write += inflight.write_s;
        self.node_busy[inflight.node] += inflight.run_s + inflight.read_s + inflight.write_s;
        if OBS {
            if let Some(trace) = self.trace.as_mut() {
                trace.record(TraceEvent::FiringEnd {
                    t: self.now,
                    node: inflight.node as u32,
                    pe: pe as u32,
                });
            }
        }
        let mut touched = std::mem::take(&mut self.touched_buf);
        touched.clear();
        self.route_compiled::<OBS>(inflight.node, inflight.emitted, ct, &mut touched);
        touched.push(pe);
        self.dispatch_wave_compiled::<OBS>(&mut touched, ct);
        self.touched_buf = touched;
    }

    /// Route on whichever backend is active. The compiled path reuses the
    /// recycled scratch vector; the interpreted path is untouched.
    #[inline]
    fn route_any(&mut self, from: usize, emitted: Vec<(usize, Item)>) -> Vec<usize> {
        if let Some(ct) = self.shared.compiled.as_ref() {
            let mut touched = std::mem::take(&mut self.touched_buf);
            touched.clear();
            self.route_compiled::<true>(from, emitted, ct, &mut touched);
            touched
        } else {
            self.route_timed(from, emitted)
        }
    }

    /// Dispatch a routed wave on whichever backend is active; the compiled
    /// path hands the vector back to the routing scratch afterwards.
    #[inline]
    fn dispatch_any(&mut self, mut worklist: Vec<usize>) {
        if let Some(ct) = self.shared.compiled.as_ref() {
            self.dispatch_wave_compiled::<true>(&mut worklist, ct);
            self.touched_buf = worklist;
        } else {
            self.dispatch_wave(worklist);
        }
    }

    /// Dispatch a single-PE wave (arrival/credit events) on whichever
    /// backend is active, allocation-free on the compiled path.
    #[inline]
    fn dispatch_pe(&mut self, pe: usize) {
        if let Some(ct) = self.shared.compiled.as_ref() {
            let mut wave = std::mem::take(&mut self.wave_buf);
            wave.clear();
            wave.push(pe);
            self.dispatch_wave_compiled::<true>(&mut wave, ct);
            self.wave_buf = wave;
        } else {
            self.dispatch_wave(vec![pe]);
        }
    }

    /// Recompute the head-mask bit of one input port after its queue head
    /// changed (a firing popped it). Compiled backend only.
    #[inline]
    fn refresh_head(&mut self, node: usize, port: usize) {
        let bit = 1u64 << port;
        self.head_data[node] &= !bit;
        self.head_ctrl[node] &= !bit;
        match self.node(node).queues[port].front() {
            Some(Item::Window(_)) => self.head_data[node] |= bit,
            Some(Item::Control(_)) => self.head_ctrl[node] |= bit,
            None => {}
        }
    }

    /// The delayed channel into `(dn, dp)`, if any. One load on the
    /// zero-model fast path.
    #[inline]
    fn delayed_chan(&self, dn: usize, dp: usize) -> Option<u32> {
        if !self.shared.any_delayed {
            return None;
        }
        self.shared.chan_into[dn][dp].filter(|&c| self.shared.channels[c as usize].latency_s > 0.0)
    }

    /// Launch `item` onto delayed channel `chan`: spend a credit, serialize
    /// behind earlier items on the wire (store-and-forward), and schedule
    /// the arrival — locally, or into the destination shard's inbox.
    fn delayed_send(&mut self, chan: u32, item: Item) {
        let c = self.shared.channels[chan as usize];
        let ci = chan as usize;
        self.credits[ci] -= 1;
        let words = item.words();
        let depart = self.now.max(self.busy_until[ci]);
        let ser = words as f64 * c.ser_per_word_s;
        let arrival = depart + ser + c.latency_s;
        self.busy_until[ci] = depart + ser;
        let seq = self.send_seq[ci];
        self.send_seq[ci] += 1;
        let ord = band1_ord(2 * chan as u64, seq);
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent::CommSend {
                t: self.now,
                chan,
                words: words as u32,
                arrival,
            });
        }
        let dst_shard = self.shard_of_pe[self.shared.pe_of_node[c.dst]];
        if dst_shard == self.shard {
            self.wire[ci].push_back(item);
            self.push_event_ord(arrival, ord, EventKind::ChannelArrival { chan });
        } else {
            self.journal_push(arrival, ord, dst_shard as u32);
            self.min_out = self.min_out.min(arrival);
            let links = self.links.expect("cross-shard send without links");
            links[dst_shard].lock().unwrap().push(OutMsg {
                t: arrival,
                ord,
                chan,
                kind: MsgKind::Arrival(item),
            });
        }
    }

    /// An in-flight item lands: pop it off the wire into the destination
    /// queue, then dispatch the destination PE.
    fn handle_channel_arrival(&mut self, chan: u32) {
        let c = self.shared.channels[chan as usize];
        let item = self.wire[chan as usize]
            .pop_front()
            .expect("arrival without in-flight item");
        let (dn, dp) = (c.dst, c.dst_port);
        if self.shared.node_roles[dn] == NodeRole::Sink {
            if let Item::Control(ControlToken::EndOfFrame) = item {
                self.sink_eof_times.push(self.now);
            }
        }
        let depth = {
            let queue = &mut self.node_mut(dn).queues[dp];
            queue.push_back(item.clone());
            queue.len()
        };
        if depth == 1 && self.shared.compiled.is_some() {
            // The item became the queue head; update the planning mask.
            let bit = 1u64 << dp;
            if matches!(item, Item::Window(_)) {
                self.head_data[dn] |= bit;
            } else {
                self.head_ctrl[dn] |= bit;
            }
        }
        if depth > self.node_max_queue[dn] {
            self.node_max_queue[dn] = depth;
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent::CommArrival { t: self.now, chan });
            trace.record(TraceEvent::QueueDepth {
                t: self.now,
                node: dn as u32,
                port: dp as u32,
                depth: depth as u32,
            });
            if let Item::Control(token) = &item {
                trace.record(TraceEvent::Token {
                    t: self.now,
                    node: dn as u32,
                    port: dp as u32,
                    token: *token,
                });
            }
        }
        self.mark_dirty(dn);
        self.dispatch_pe(self.shared.pe_of_node[dn]);
    }

    /// A credit comes home: the channel's producer may have been blocked on
    /// it (it stayed dirty when declined for space), so dispatch its PE.
    fn handle_credit_return(&mut self, chan: u32) {
        self.credits[chan as usize] += 1;
        let src = self.shared.channels[chan as usize].src;
        self.dispatch_pe(self.shared.pe_of_node[src]);
    }

    /// After a firing consumed one item from each trigger port, schedule a
    /// credit return (delayed by the channel latency) for every consumed
    /// port fed by a delayed channel — to the owning shard of the sender.
    fn return_credits(&mut self, node: usize, method: usize) {
        if self.shared.delayed_in_ports[node].is_empty() {
            return;
        }
        let triggers: Vec<usize> = self.node(node).compiled[method]
            .triggers
            .iter()
            .map(|&(p, _)| p)
            .collect();
        for port in triggers {
            let Some(&(_, chan)) = self.shared.delayed_in_ports[node]
                .iter()
                .find(|&&(p, _)| p == port)
            else {
                continue;
            };
            let ci = chan as usize;
            let c = self.shared.channels[ci];
            let seq = self.credit_seq[ci];
            self.credit_seq[ci] += 1;
            let ord = band1_ord(2 * chan as u64 + 1, seq);
            let t = self.now + c.latency_s;
            let src_shard = self.shard_of_pe[self.shared.pe_of_node[c.src]];
            if src_shard == self.shard {
                self.push_event_ord(t, ord, EventKind::CreditReturn { chan });
            } else {
                self.journal_push(t, ord, src_shard as u32);
                self.min_out = self.min_out.min(t);
                let links = self.links.expect("cross-shard credit without links");
                links[src_shard].lock().unwrap().push(OutMsg {
                    t,
                    ord,
                    chan,
                    kind: MsgKind::Credit,
                });
            }
        }
    }

    /// Deliver items, recording sink EOF arrival times and marking the
    /// receiving nodes dirty. Returns the PEs that may now have new work;
    /// the drained buffer is recycled to the emitting node. Destinations
    /// behind a delayed channel receive nothing now — the item goes onto
    /// the channel wire and lands at its [`EventKind::ChannelArrival`].
    fn route_timed(&mut self, from: usize, mut emitted: Vec<(usize, Item)>) -> Vec<usize> {
        let mut touched = Vec::new();
        for (port, item) in emitted.drain(..) {
            if let Item::Control(ControlToken::Custom(_)) = item {
                self.custom_token_emissions[from] += 1;
            }
            let n_dests = self.shared.tables.routes[from][port].len();
            for di in 0..n_dests {
                let (dn, dp) = self.shared.tables.routes[from][port][di];
                if let Some(chan) = self.delayed_chan(dn, dp) {
                    self.delayed_send(chan, item.clone());
                    continue;
                }
                if self.shared.node_roles[dn] == NodeRole::Sink {
                    if let Item::Control(ControlToken::EndOfFrame) = item {
                        self.sink_eof_times.push(self.now);
                    }
                }
                let depth = {
                    let queue = &mut self.node_mut(dn).queues[dp];
                    queue.push_back(item.clone());
                    queue.len()
                };
                if depth > self.node_max_queue[dn] {
                    self.node_max_queue[dn] = depth;
                }
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(TraceEvent::QueueDepth {
                        t: self.now,
                        node: dn as u32,
                        port: dp as u32,
                        depth: depth as u32,
                    });
                    if let Item::Control(token) = &item {
                        trace.record(TraceEvent::Token {
                            t: self.now,
                            node: dn as u32,
                            port: dp as u32,
                            token: *token,
                        });
                    }
                }
                self.mark_dirty(dn);
                let pe = self.shared.pe_of_node[dn];
                if !touched.contains(&pe) {
                    touched.push(pe);
                }
            }
        }
        self.node_mut(from).recycle_out_buf(emitted);
        touched
    }

    /// Attempt to start work on each PE in the list; starting a firing frees
    /// upstream queue space, so upstream PEs are re-attempted transitively.
    fn dispatch_wave(&mut self, mut worklist: Vec<usize>) {
        while let Some(pe) = worklist.pop() {
            if self.pe_inflight[pe].is_some() {
                continue;
            }
            if let Some(node) = self.try_start(pe) {
                for i in 0..self.shared.upstream[node].len() {
                    let up_pe = self.shared.pe_of_node[self.shared.upstream[node][i]];
                    if !worklist.contains(&up_pe) {
                        worklist.push(up_pe);
                    }
                }
                // The PE itself is now busy; it will be revisited at PeDone.
            } else if self.trace.is_some() {
                self.record_stall(pe);
            }
        }
    }

    /// Attribute why `pe` failed to start a firing just now, from pure
    /// reads of its residents' state. Any resident with a fireable plan
    /// must have been blocked by `downstream_space` (that is the only way
    /// `try_start` declines a plan), so back-pressure wins the attribution;
    /// otherwise queued-but-untriggerable inputs mean the PE is starved,
    /// and an empty PE is idle.
    fn stall_cause(&self, pe: usize) -> StallCause {
        let mut has_items = false;
        for &node in &self.shared.residents[pe] {
            if self.shared.node_roles[node] == NodeRole::Source {
                continue;
            }
            let n = self.node(node);
            if n.plan().is_some() {
                return StallCause::OutputBlocked;
            }
            has_items = has_items || n.queued_items() > 0;
        }
        if has_items {
            StallCause::InputStarved
        } else {
            StallCause::Idle
        }
    }

    /// Record a stall transition for `pe` if its attributed cause changed
    /// since the last record. Only called when tracing is enabled.
    fn record_stall(&mut self, pe: usize) {
        let cause = self.stall_cause(pe);
        if self.pe_stall[pe] != Some(cause) {
            self.pe_stall[pe] = Some(cause);
            let t = self.now;
            self.trace.as_mut().unwrap().record(TraceEvent::Stall {
                t,
                pe: pe as u32,
                cause,
            });
        }
    }

    /// Try to begin one firing on `pe`; returns the node that fired.
    ///
    /// Residents are scanned in round-robin order, skipping clean nodes
    /// (their inputs have not changed since they last failed to plan, so
    /// they still cannot fire). A dirty node that plans `None` is cleaned;
    /// one that is only blocked on downstream space stays dirty, because
    /// space freeing re-triggers a dispatch of this PE. The round-robin
    /// pointer advances exactly as in an exhaustive scan.
    fn try_start(&mut self, pe: usize) -> Option<usize> {
        if self.dirty_count[pe] == 0 {
            return None;
        }
        let len = self.shared.residents[pe].len();
        for k in 0..len {
            let idx = (self.rr[pe] + k) % len;
            let node = self.shared.residents[pe][idx];
            if !self.dirty[node] {
                continue;
            }
            let Some(action) = self.node(node).plan() else {
                self.clear_dirty(node);
                continue;
            };
            if !self.downstream_space(node, action) {
                continue;
            }
            // Compute read words from the items about to be consumed.
            let read_words: u64 = match action {
                Action::Fire { method } => {
                    let n = self.node(node);
                    n.compiled[method]
                        .triggers
                        .iter()
                        .map(|&(p, _)| n.queues[p].front().map_or(0, |i| i.words()))
                        .sum()
                }
                Action::Forward { .. } => 0,
            };
            let declared: u64 = match action {
                Action::Fire { method } => self.node(node).compiled[method].cost_cycles,
                Action::Forward { .. } => 1,
            };
            let (emitted, actual) = self.node_mut(node).execute_with_cost(action);
            // Firing consumed inputs and may have changed private state;
            // the node must be re-planned before it can be skipped again.
            self.mark_dirty(node);
            // Consumption frees buffer space on the consumed channels;
            // return the credits for any delayed ones.
            if self.shared.any_delayed {
                let mi = match action {
                    Action::Fire { method } | Action::Forward { method, .. } => method,
                };
                self.return_credits(node, mi);
            }
            // Data-dependent-cost kernels report their actual work; running
            // past the declared budget is a runtime resource exception
            // (§VII) recorded per node.
            let cycles = actual.unwrap_or(declared);
            if cycles > declared {
                self.budget_overruns[node] += 1;
            }
            let write_words: u64 = emitted.iter().map(|(_, i)| i.words()).sum();
            let m = &self.shared.machine;
            let run_s = cycles as f64 / m.pe_clock_hz;
            let read_s = read_words as f64 * m.read_cost_per_word / m.pe_clock_hz;
            let write_s = write_words as f64 * m.write_cost_per_word / m.pe_clock_hz;
            let dt = run_s + read_s + write_s;
            self.pe_inflight[pe] = Some(Inflight {
                node,
                emitted,
                run_s,
                read_s,
                write_s,
            });
            self.rr[pe] = (idx + 1) % len;
            self.pe_stall[pe] = None;
            if self.trace.is_some() {
                let t = self.now;
                let mi = match action {
                    Action::Fire { method } | Action::Forward { method, .. } => method,
                };
                // The firing consumed one item from each trigger port;
                // capture the new depths of those channels before taking
                // the recorder borrow.
                let depths: Vec<(u32, u32)> = {
                    let n = self.node(node);
                    n.compiled[mi]
                        .triggers
                        .iter()
                        .map(|&(port, _)| (port as u32, n.queues[port].len() as u32))
                        .collect()
                };
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(TraceEvent::FiringBegin {
                        t,
                        node: node as u32,
                        method: mi as u32,
                        pe: pe as u32,
                        cycles,
                    });
                    for (port, depth) in depths {
                        trace.record(TraceEvent::QueueDepth {
                            t,
                            node: node as u32,
                            port,
                            depth,
                        });
                    }
                }
            }
            let t_done = self.now + dt;
            self.push_event(t_done, EventKind::PeDone { pe });
            return Some(node);
        }
        None
    }

    /// True when every destination queue of the action's outputs has room
    /// for this firing's worst-case emissions (2 items of slack). Delayed
    /// channels are judged by the local credit count — never by receiver
    /// state, so the check stays shard-local.
    fn downstream_space(&self, node: usize, action: Action) -> bool {
        let method = match action {
            Action::Fire { method } | Action::Forward { method, .. } => method,
        };
        let outputs = &self.node(node).compiled[method].outputs;
        for &port in outputs {
            for &(dn, dp) in &self.shared.tables.routes[node][port] {
                match self.delayed_chan(dn, dp) {
                    Some(chan) => {
                        if self.credits[chan as usize] < 2 {
                            return false;
                        }
                    }
                    None => {
                        if self.node(dn).queues[dp].len() + 2 > self.shared.cap_into[dn][dp] {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    // ---- Direct-threaded (compiled) execution paths ----------------------
    //
    // Each method below mirrors its interpreted counterpart statement for
    // statement, with the interpreter's per-event lookups replaced by the
    // pre-resolved `CompiledTables`. The mirrored order of side effects
    // (trace records, journal pushes, counter updates) is what keeps the
    // fingerprints and traces bitwise identical; the differential suite
    // pins it.

    /// Compiled [`route_timed`](Self::route_timed): destinations come from
    /// the fused [`RouteDest`] table, touched PEs accumulate into recycled
    /// scratch, head masks are maintained at each push, and the final
    /// destination of a fan-out receives the item by move instead of
    /// clone+drop.
    fn route_compiled<const OBS: bool>(
        &mut self,
        from: usize,
        mut emitted: Vec<(usize, Item)>,
        ct: &CompiledTables,
        touched: &mut Vec<usize>,
    ) {
        for (port, item) in emitted.drain(..) {
            let tok = match &item {
                Item::Control(t) => Some(*t),
                Item::Window(_) => None,
            };
            if let Some(ControlToken::Custom(_)) = tok {
                self.custom_token_emissions[from] += 1;
            }
            let dests = &ct.dests[from][port];
            let n_dests = dests.len();
            if n_dests == 0 {
                continue;
            }
            let mut item = Some(item);
            for (di, &d) in dests.iter().enumerate() {
                let it = if di + 1 == n_dests {
                    item.take().expect("item moved early")
                } else {
                    item.as_ref().expect("item moved early").clone()
                };
                if d.chan != u32::MAX {
                    self.delayed_send(d.chan, it);
                    continue;
                }
                let (dn, dp) = (d.dn as usize, d.dp as usize);
                if d.sink {
                    if let Some(ControlToken::EndOfFrame) = tok {
                        self.sink_eof_times.push(self.now);
                    }
                }
                let depth = {
                    let queue = &mut self.node_mut(dn).queues[dp];
                    queue.push_back(it);
                    queue.len()
                };
                if depth == 1 {
                    let bit = 1u64 << dp;
                    if tok.is_none() {
                        self.head_data[dn] |= bit;
                    } else {
                        self.head_ctrl[dn] |= bit;
                    }
                }
                if depth > self.node_max_queue[dn] {
                    self.node_max_queue[dn] = depth;
                }
                if OBS {
                    if let Some(trace) = self.trace.as_mut() {
                        trace.record(TraceEvent::QueueDepth {
                            t: self.now,
                            node: dn as u32,
                            port: dp as u32,
                            depth: depth as u32,
                        });
                        if let Some(token) = tok {
                            trace.record(TraceEvent::Token {
                                t: self.now,
                                node: dn as u32,
                                port: dp as u32,
                                token,
                            });
                        }
                    }
                }
                self.mark_dirty(dn);
                // Busy PEs are filtered here instead of at pop time: a PE
                // in flight cannot come free within this wave (only
                // `handle_pe_done` clears it, one per event), so skipping
                // the push elides a guaranteed no-op pop without changing
                // the order of the pops that do work.
                let pe = self.shared.pe_of_node[dn];
                if self.pe_inflight[pe].is_none() && self.wave_test_set(pe) {
                    touched.push(pe);
                }
            }
        }
        self.node_mut(from).recycle_out_buf(emitted);
    }

    /// Compiled [`dispatch_wave`](Self::dispatch_wave) over a borrowed
    /// worklist (the caller recycles the vector).
    fn dispatch_wave_compiled<const OBS: bool>(
        &mut self,
        worklist: &mut Vec<usize>,
        ct: &CompiledTables,
    ) {
        while let Some(pe) = worklist.pop() {
            self.wave_clear(pe);
            if self.pe_inflight[pe].is_some() {
                continue;
            }
            if let Some(node) = self.try_start_compiled::<OBS>(pe, ct) {
                for i in 0..self.shared.upstream[node].len() {
                    let up = self.shared.upstream[node][i];
                    // An upstream wake's only new information is the space
                    // this firing's consumption freed, so the untraced
                    // dispatcher wakes only `space_waiting` producers (see
                    // the field's invariant). The traced instantiation
                    // keeps the interpreter's exhaustive pushes: those
                    // extra pops are outcome-free but *observable*, as
                    // each may record a stall transition.
                    if OBS || self.space_waiting[up] {
                        let up_pe = self.shared.pe_of_node[up];
                        // Same busy-at-push filter as `route_compiled`:
                        // the started PEs only accumulate within a wave,
                        // so a busy upstream PE would be skipped at its
                        // pop anyway.
                        if self.pe_inflight[up_pe].is_none() && self.wave_test_set(up_pe) {
                            worklist.push(up_pe);
                        }
                    }
                }
            } else if OBS && self.trace.is_some() {
                self.record_stall(pe);
            }
        }
    }

    /// Flattened [`downstream_space`](Self::downstream_space) over the
    /// method's precomputed check list (identical scan order).
    #[inline]
    fn space_ok(&self, checks: &[SpaceCheck]) -> bool {
        for c in checks {
            match *c {
                SpaceCheck::Credit { chan } => {
                    if self.credits[chan as usize] < 2 {
                        return false;
                    }
                }
                SpaceCheck::Queue { dn, dp, cap } => {
                    if self.node(dn as usize).queues[dp as usize].len() + 2 > cap as usize {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Compiled [`return_credits`](Self::return_credits): the fired
    /// method's delayed trigger channels were resolved at build time, so
    /// this neither allocates nor searches `delayed_in_ports`.
    fn return_credits_compiled(&mut self, chans: &[u32]) {
        for &chan in chans {
            let ci = chan as usize;
            let c = self.shared.channels[ci];
            let seq = self.credit_seq[ci];
            self.credit_seq[ci] += 1;
            let ord = band1_ord(2 * chan as u64 + 1, seq);
            let t = self.now + c.latency_s;
            let src_shard = self.shard_of_pe[self.shared.pe_of_node[c.src]];
            if src_shard == self.shard {
                self.push_event_ord(t, ord, EventKind::CreditReturn { chan });
            } else {
                self.journal_push(t, ord, src_shard as u32);
                self.min_out = self.min_out.min(t);
                let links = self.links.expect("cross-shard credit without links");
                links[src_shard].lock().unwrap().push(OutMsg {
                    t,
                    ord,
                    chan,
                    kind: MsgKind::Credit,
                });
            }
        }
    }

    /// Compiled [`try_start`](Self::try_start): planning is a mask test
    /// plus the `ready()` call, firing runs the method's direct-threaded
    /// routine (pops, read-word accounting, and the behavior call fused),
    /// and the space/credit/cost lookups hit the precomputed tables.
    fn try_start_compiled<const OBS: bool>(
        &mut self,
        pe: usize,
        ct: &CompiledTables,
    ) -> Option<usize> {
        if self.dirty_count[pe] == 0 {
            return None;
        }
        let len = self.shared.residents[pe].len();
        // Round-robin over the residents starting at `rr[pe]`, with the
        // wraparound as a compare instead of the interpreter's modulo.
        let mut idx = self.rr[pe];
        for _ in 0..len {
            let cur = idx;
            idx += 1;
            if idx == len {
                idx = 0;
            }
            let node = self.shared.residents[pe][cur];
            if !self.dirty[node] {
                continue;
            }
            let tn = &ct.program.nodes[node];
            #[cfg(debug_assertions)]
            {
                let n = self.node(node);
                debug_assert_eq!(
                    bp_codegen::head_masks(&n.queues),
                    (self.head_data[node], self.head_ctrl[node]),
                    "stale head masks for node {node}"
                );
            }
            let action = {
                let n = self.node(node);
                tn.plan(
                    self.head_data[node],
                    self.head_ctrl[node],
                    &n.queues,
                    n.behavior.as_ref(),
                )
            };
            let Some(action) = action else {
                self.clear_dirty(node);
                continue;
            };
            let mi = match action {
                bp_codegen::PlannedAction::Fire { method }
                | bp_codegen::PlannedAction::Forward { method, .. } => method,
            };
            if !self.space_ok(&ct.space[node][mi]) {
                // Plannable but space-blocked: only downstream consumption
                // can unblock it, so flag it for the consumers' upstream
                // wakes (the node stays dirty, exactly like the
                // interpreter's declined plan).
                self.space_waiting[node] = true;
                continue;
            }
            let tm = &tn.methods[mi];
            let (emitted, read_words, cycles, declared, run_s) = match action {
                bp_codegen::PlannedAction::Fire { .. } => {
                    let (emitted, res) = self.node_mut(node).fire_threaded(&tm.fire);
                    let declared = tm.cost_cycles;
                    let cycles = res.actual_cycles.unwrap_or(declared);
                    // Equal cycle counts reuse the build-time quotient
                    // (identical operands ⇒ identical bits); a
                    // data-dependent count divides live like the interpreter.
                    let run_s = if cycles == declared {
                        ct.run_s[node][mi]
                    } else {
                        cycles as f64 / self.shared.machine.pe_clock_hz
                    };
                    (emitted, res.read_words, cycles, declared, run_s)
                }
                bp_codegen::PlannedAction::Forward { token, .. } => {
                    let emitted = self.node_mut(node).forward_threaded(tm, token);
                    (emitted, 0, 1, 1, ct.forward_run_s)
                }
            };
            for &p in &tm.trigger_ports {
                self.refresh_head(node, p);
            }
            // Firing consumed inputs and may have changed private state;
            // the node must be re-planned before it can be skipped again.
            self.mark_dirty(node);
            if self.shared.any_delayed {
                self.return_credits_compiled(&ct.credit_chans[node][mi]);
            }
            if cycles > declared {
                self.budget_overruns[node] += 1;
            }
            let write_words: u64 = emitted.iter().map(|(_, i)| i.words()).sum();
            let m = &self.shared.machine;
            // Memoized word-cost conversions: a hit replays the quotient
            // the interpreter's expression produced for the same operands
            // (bitwise identical by IEEE-754 determinism), a miss runs the
            // expression live and refills the slot.
            let memo = &mut self.rw_memo[(ct.method_base[node] + mi as u32) as usize];
            let read_s = if memo.read_words == read_words {
                memo.read_s
            } else {
                let v = read_words as f64 * m.read_cost_per_word / m.pe_clock_hz;
                memo.read_words = read_words;
                memo.read_s = v;
                v
            };
            let write_s = if memo.write_words == write_words {
                memo.write_s
            } else {
                let v = write_words as f64 * m.write_cost_per_word / m.pe_clock_hz;
                memo.write_words = write_words;
                memo.write_s = v;
                v
            };
            let dt = run_s + read_s + write_s;
            self.pe_inflight[pe] = Some(Inflight {
                node,
                emitted,
                run_s,
                read_s,
                write_s,
            });
            self.rr[pe] = idx;
            self.space_waiting[node] = false;
            if OBS {
                self.pe_stall[pe] = None;
                if self.trace.is_some() {
                    let t = self.now;
                    let depths: Vec<(u32, u32)> = {
                        let n = self.node(node);
                        tm.trigger_ports
                            .iter()
                            .map(|&port| (port as u32, n.queues[port].len() as u32))
                            .collect()
                    };
                    if let Some(trace) = self.trace.as_mut() {
                        trace.record(TraceEvent::FiringBegin {
                            t,
                            node: node as u32,
                            method: mi as u32,
                            pe: pe as u32,
                            cycles,
                        });
                        for (port, depth) in depths {
                            trace.record(TraceEvent::QueueDepth {
                                t,
                                node: node as u32,
                                port,
                                depth,
                            });
                        }
                    }
                }
            }
            let t_done = self.now + dt;
            if OBS {
                self.push_event(t_done, EventKind::PeDone { pe });
            } else {
                self.events.push(t_done, EventKind::PeDone { pe });
            }
            return Some(node);
        }
        None
    }
}

/// Walk the wait-for graph of a capacity-deadlocked program and return the
/// cycle of filled channels as structured hops.
///
/// A blocked node (fireable plan, all PEs idle) is waiting on its first
/// output channel that fails the `downstream_space` check; following those
/// edges from each blocked node in index order either revisits a node —
/// the wait-for cycle (in a feedback loop, the channel chain that filled)
/// — or dead-ends. Pure reads only, and both engines call this on the same
/// merged node state (including the merged sender-side credits for delayed
/// channels), so the resulting hops — channel names, occupancies, and
/// capacities included — are identical between the sequential and parallel
/// simulators.
fn deadlock_wait_cycle(
    shared: &Shared,
    nodes: &[RtNode],
    credits: &[i64],
) -> Option<Vec<DeadlockHop>> {
    let n = nodes.len();
    let blocked: Vec<bool> = (0..n)
        .map(|i| shared.node_roles[i] != NodeRole::Source && nodes[i].plan().is_some())
        .collect();
    // The delayed channel into `(dn, dp)`, if any (mirrors
    // `ShardSim::delayed_chan` on merged state).
    let delayed_chan = |dn: usize, dp: usize| -> Option<u32> {
        if !shared.any_delayed {
            return None;
        }
        shared.chan_into[dn][dp].filter(|&c| shared.channels[c as usize].latency_s > 0.0)
    };
    // The first full output channel of a blocked node: `(out_port, dst,
    // dst_port)`. Deterministic because ports and routes scan in order.
    let wait_edge = |i: usize| -> Option<(usize, usize, usize)> {
        let method = match nodes[i].plan()? {
            Action::Fire { method } | Action::Forward { method, .. } => method,
        };
        for &port in &nodes[i].compiled[method].outputs {
            for &(dn, dp) in &shared.tables.routes[i][port] {
                let full = match delayed_chan(dn, dp) {
                    Some(chan) => credits[chan as usize] < 2,
                    None => nodes[dn].queues[dp].len() + 2 > shared.cap_into[dn][dp],
                };
                if full {
                    return Some((port, dn, dp));
                }
            }
        }
        None
    };
    for start in (0..n).filter(|&i| blocked[i]) {
        // `(src, out_port, dst, in_port)` hops from `start`.
        let mut path: Vec<(usize, usize, usize, usize)> = Vec::new();
        let mut pos = vec![usize::MAX; n];
        let mut cur = start;
        while blocked[cur] && pos[cur] == usize::MAX {
            let Some((op, dst, ip)) = wait_edge(cur) else {
                break;
            };
            pos[cur] = path.len();
            path.push((cur, op, dst, ip));
            cur = dst;
        }
        if blocked[cur] && pos[cur] != usize::MAX {
            let mut hops = Vec::with_capacity(path.len() - pos[cur]);
            for &(src, op, dst, ip) in &path[pos[cur]..] {
                let capacity = shared.cap_into[dst][ip];
                // For a delayed channel, occupancy is capacity minus the
                // sender's remaining credits (queued + in flight).
                let occupancy = match delayed_chan(dst, ip) {
                    Some(chan) => (capacity as i64 - credits[chan as usize]).max(0) as usize,
                    None => nodes[dst].queues[ip].len(),
                };
                hops.push(DeadlockHop {
                    src: nodes[src].name.clone(),
                    src_port: nodes[src].spec.outputs[op].name.clone(),
                    dst: nodes[dst].name.clone(),
                    dst_port: nodes[dst].spec.inputs[ip].name.clone(),
                    occupancy,
                    capacity,
                });
            }
            return Some(hops);
        }
    }
    None
}

/// One hop for a channel in the settled program, with its resolved
/// capacity and occupancy (sender-side credit accounting for delayed
/// channels, direct queue inspection otherwise).
fn channel_hop(shared: &Shared, nodes: &[RtNode], credits: &[i64], ci: usize) -> DeadlockHop {
    let c = &shared.channels[ci];
    let capacity = c.cap;
    let delayed = shared.any_delayed && c.latency_s > 0.0;
    let occupancy = if delayed {
        (capacity as i64 - credits[ci]).max(0) as usize
    } else {
        nodes[c.dst].queues[c.dst_port].len()
    };
    DeadlockHop {
        src: nodes[c.src].name.clone(),
        src_port: nodes[c.src].spec.outputs[c.src_port].name.clone(),
        dst: nodes[c.dst].name.clone(),
        dst_port: nodes[c.dst].spec.inputs[c.dst_port].name.clone(),
        occupancy,
        capacity,
    }
}

/// When the blocked producers form a chain rather than a wait-for cycle
/// (the chain's head is stuck behind a consumer legitimately waiting for
/// external input — the parked-population deadlock of an under-sized
/// feedback back edge), find the *structural* channel cycle through a
/// blocked node: the loop whose circulating population no longer fits.
/// Deterministic — blocked nodes are scanned in index order and the DFS
/// explores channels in slot order — so both engines derive identical
/// hops from the same merged state.
fn starved_loop_cycle(
    shared: &Shared,
    nodes: &[RtNode],
    credits: &[i64],
) -> Option<Vec<DeadlockHop>> {
    let n = nodes.len();
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in shared.channels.iter().enumerate() {
        out[c.src].push(ci);
    }
    let blocked =
        (0..n).filter(|&i| shared.node_roles[i] != NodeRole::Source && nodes[i].plan().is_some());
    for start in blocked {
        // Iterative DFS for the first channel path start -> ... -> start.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)]; // (node, next edge)
        let mut path: Vec<usize> = Vec::new(); // channel per stack frame after the first
        let mut on_path = vec![false; n];
        on_path[start] = true;
        while let Some(&(v, ei)) = stack.last() {
            if let Some(&ci) = out[v].get(ei) {
                stack.last_mut().expect("frame present").1 += 1;
                let dst = shared.channels[ci].dst;
                if dst == start {
                    path.push(ci);
                    return Some(
                        path.iter()
                            .map(|&ci| channel_hop(shared, nodes, credits, ci))
                            .collect(),
                    );
                }
                if !on_path[dst] {
                    on_path[dst] = true;
                    path.push(ci);
                    stack.push((dst, 0));
                }
            } else {
                stack.pop();
                on_path[v] = false;
                if !stack.is_empty() {
                    path.pop();
                }
            }
        }
    }
    None
}

/// Check the settled program for a capacity deadlock and build the final
/// outcome — a completed [`SimReport`] or a structured [`DeadlockReport`].
/// Used identically by the sequential and parallel simulators, with the
/// latter feeding merged per-shard state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_outcome(
    shared: &Shared,
    nodes: &[RtNode],
    stats: Vec<PeStats>,
    node_busy: Vec<f64>,
    now: f64,
    violations: u64,
    sink_eof_times: Vec<f64>,
    frame_start_times: Vec<f64>,
    custom_token_emissions: &[u64],
    budget_overruns: Vec<u64>,
    node_max_queue: Vec<usize>,
    credits: &[i64],
) -> SimOutcome {
    // Everything settled. If any node still has a fireable plan, the
    // only thing that can have stopped it is downstream capacity — with
    // all PEs idle that is a genuine capacity deadlock. Residual items
    // with no fireable plan are legitimate (e.g. the final frame
    // circulating in a feedback loop) and are reported, not fatal.
    let deadlocked = (0..nodes.len())
        .any(|i| shared.node_roles[i] != NodeRole::Source && nodes[i].plan().is_some());
    if deadlocked {
        let queued: usize = nodes.iter().map(|n| n.queued_items()).sum();
        let (cycle, blocked_cycle) = match deadlock_wait_cycle(shared, nodes, credits) {
            Some(hops) => (hops, true),
            None => (
                starved_loop_cycle(shared, nodes, credits).unwrap_or_default(),
                false,
            ),
        };
        // The full hop whose producer the smallest single-channel capacity
        // increase would unblock: minimize `occupancy + 2 - capacity` over
        // hops that are actually blocking (ties break to the earliest hop
        // in walk order, deterministic on both engines).
        let min_capacity_bump = cycle
            .iter()
            .filter(|h| h.occupancy + 2 > h.capacity)
            .min_by_key(|h| h.occupancy + 2 - h.capacity)
            .map(|h| CapacityBump {
                channel: format!("{}.{} -> {}.{}", h.src, h.src_port, h.dst, h.dst_port),
                current: h.capacity,
                required: h.occupancy + 2,
            });
        return SimOutcome::Deadlocked(DeadlockReport {
            queued_items: queued,
            cycle,
            blocked_cycle,
            min_capacity_bump,
            stuck: stuck_report(nodes),
        });
    }
    let residual: u64 = nodes.iter().map(|n| n.queued_items() as u64).sum();

    let sinks = shared.num_sinks;
    let frames_completed = (sink_eof_times.len() / sinks) as u32;
    // One frame completes when all sinks have seen its end-of-frame;
    // group the EOF arrivals per frame and rate the completions.
    let completions: Vec<f64> = sink_eof_times
        .chunks_exact(sinks)
        .map(|c| c.iter().cloned().fold(0.0f64, f64::max))
        .collect();
    let achieved = if completions.len() >= 2 && *completions.last().unwrap() > completions[0] {
        (completions.len() - 1) as f64 / (completions.last().unwrap() - completions[0])
    } else if now > 0.0 {
        frames_completed as f64 / now
    } else {
        0.0
    };
    let met = violations == 0 && frames_completed >= shared.frames;
    // Per-frame latency: first sample injection -> sink end-of-frame.
    // With several sinks, take the last EOF of each frame.
    let frame_latencies: Vec<f64> = sink_eof_times
        .chunks(sinks)
        .zip(frame_start_times.iter())
        .map(|(eofs, start)| eofs.iter().cloned().fold(0.0f64, f64::max) - start)
        .collect();
    // §II-C: verify every kernel stayed within its declared custom-token
    // rate bounds over the simulated interval.
    let mut token_rate_violations = Vec::new();
    if now > 0.0 {
        for (i, rt) in nodes.iter().enumerate() {
            let emitted = custom_token_emissions[i];
            if emitted == 0 {
                continue;
            }
            let declared: f64 = rt.spec.custom_tokens.iter().map(|t| t.max_rate_hz).sum();
            let observed = emitted as f64 / now;
            // Allow one token of slack for startup transients.
            if observed > declared + 1.0 / now {
                token_rate_violations.push((rt.name.clone(), observed, declared));
            }
        }
    }
    SimOutcome::Completed(SimReport {
        pe_stats: stats,
        node_firings: nodes.iter().map(|n| n.firings).collect(),
        node_busy,
        sim_time: now,
        frames_completed,
        residual_items: residual,
        budget_overruns,
        node_max_queue,
        frame_latencies,
        token_rate_violations,
        verdict: RealTimeVerdict {
            met,
            violations,
            required_rate_hz: shared.required_rate_hz,
            achieved_rate_hz: achieved,
        },
    })
}

/// The timing-accurate simulator. Construct with a graph, a kernel-to-PE
/// mapping, and a configuration, then [`run`](Self::run).
pub struct TimedSimulator {
    nodes: Vec<RtNode>,
    shared: Shared,
}

impl TimedSimulator {
    /// Instantiate the graph under the given mapping.
    pub fn new(graph: &AppGraph, mapping: &Mapping, config: SimConfig) -> Result<Self> {
        let (nodes, shared) = build_shared(graph, mapping, config)?;
        Ok(Self { nodes, shared })
    }

    /// Wrap an already-instantiated program (the parallel simulator's
    /// single-shard fallback).
    pub(crate) fn from_parts(nodes: Vec<RtNode>, shared: Shared) -> Self {
        Self { nodes, shared }
    }

    /// Run the simulation to completion and report. A capacity deadlock
    /// becomes a simulation error carrying the rendered
    /// [`DeadlockReport`]; use [`run_outcome`](Self::run_outcome) to get
    /// the structured diagnosis instead.
    pub fn run(self) -> Result<SimReport> {
        self.run_with_trace().map(|(report, _)| report)
    }

    /// Run the simulation and report how it settled: completed, or
    /// capacity-deadlocked with a structured [`DeadlockReport`].
    pub fn run_outcome(self) -> SimOutcome {
        self.run_outcome_with_trace().0
    }

    /// Run the simulation and also return the recorded [`Trace`] when
    /// [`SimConfig::trace`] was set (`None` otherwise). The report is
    /// bit-identical to [`run`](Self::run)'s — tracing is inert.
    pub fn run_with_trace(self) -> Result<(SimReport, Option<Trace>)> {
        let (outcome, trace) = self.run_outcome_with_trace();
        Ok((outcome.into_report()?, trace))
    }

    /// [`run_outcome`](Self::run_outcome), plus the recorded [`Trace`]
    /// when tracing was enabled (recorded up to the point of settlement,
    /// deadlocked or not).
    pub fn run_outcome_with_trace(self) -> (SimOutcome, Option<Trace>) {
        let Self { nodes, shared } = self;
        // One shard owning every PE: the engine runs exactly the schedule
        // documented at the top of this module.
        let shard_of_pe = vec![0usize; shared.residents.len()];
        let slots = DisjointSlots::new(nodes);
        let outcome = {
            let mut sim = ShardSim::new(&shared, &slots, 0, &shard_of_pe, false, None);
            sim.run();
            sim.into_outcome()
        };
        let nodes = slots.into_inner();
        // The single shard records in global pop order, so its buffer is
        // already the canonical trace.
        let trace = outcome.trace.map(|rec| {
            let (events, dropped) = rec.into_events();
            Trace {
                meta: TraceMeta::from_parts(
                    &nodes,
                    &shared.pe_of_node,
                    shared.residents.len(),
                    shared.machine.pe_clock_hz,
                    &shared.channels,
                ),
                events,
                dropped,
            }
        });
        let settled = assemble_outcome(
            &shared,
            &nodes,
            outcome.stats,
            outcome.node_busy,
            outcome.now,
            outcome.violations,
            outcome.sink_eof_times,
            outcome.frame_start_times,
            &outcome.custom_token_emissions,
            outcome.budget_overruns,
            outcome.node_max_queue,
            &outcome.credits,
        );
        (settled, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{Dim2, GraphBuilder};

    fn chain_graph(kernel: bp_core::KernelDef) -> AppGraph {
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", bp_kernels::pattern_source(dim), dim, 50.0);
        let k = b.add("K", kernel);
        let (sdef, _) = bp_kernels::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", k, "in");
        b.connect(k, "out", snk, "in");
        b.build().unwrap()
    }

    #[test]
    fn capacity_derives_floor_for_narrow_windows() {
        // Every input window in this graph is narrower than 64, so the
        // derived capacity is the 64-item floor (the historical default).
        let g = chain_graph(bp_kernels::median(5, 5));
        assert_eq!(derive_channel_capacity(&g), 64);
    }

    #[test]
    fn capacity_derives_from_widest_input_row() {
        // A 100-tap FIR consumes a 100-wide window row: capacity rounds up
        // to the next power of two.
        let dim = Dim2::new(200, 1);
        let mut b = GraphBuilder::new();
        let src = b.add_source("In", bp_kernels::pattern_source(dim), dim, 100.0);
        let fir = b.add("Fir", bp_kernels::fir(100));
        let taps = b.add(
            "Taps",
            bp_kernels::const_source("taps", bp_kernels::boxcar_taps(100)),
        );
        let (sdef, _) = bp_kernels::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", fir, "in");
        b.connect(taps, "out", fir, "taps");
        b.connect(fir, "out", snk, "in");
        let g = b.build().unwrap();
        assert_eq!(derive_channel_capacity(&g), 128);
    }

    #[test]
    fn explicit_capacity_overrides_derivation() {
        let g = chain_graph(bp_kernels::scale(2.0, 0.0));
        let cfg = SimConfig::new(1).with_channel_capacity(16);
        assert_eq!(cfg.channel_capacity, Some(16));
        // The uniform pin is what the simulator resolves, not the derived
        // plan.
        let mapping = Mapping::one_to_one(g.node_count());
        let (_, shared) = build_shared(&g, &mapping, cfg).unwrap();
        assert!(shared.channels.iter().all(|c| c.cap == 16));
        let (_, shared) = build_shared(&g, &mapping, SimConfig::new(1)).unwrap();
        assert!(shared.channels.iter().all(|c| c.cap == 64));
        // cap_into mirrors the per-channel resolution at the consumer side.
        for c in &shared.channels {
            assert_eq!(shared.cap_into[c.dst][c.dst_port], c.cap);
        }
    }

    #[test]
    fn explicit_plan_overrides_derivation_per_channel() {
        let g = chain_graph(bp_kernels::scale(2.0, 0.0));
        // Override one channel (the first) and keep the default elsewhere.
        let (first_cid, _) = g.channels().next().unwrap();
        let plan = bp_core::ChannelCapacities::uniform(64).with_override(first_cid, 96);
        let cfg = SimConfig::new(1).with_channel_capacities(plan);
        let mapping = Mapping::one_to_one(g.node_count());
        let (_, shared) = build_shared(&g, &mapping, cfg).unwrap();
        assert_eq!(shared.channels[0].cap, 96);
        assert!(shared.channels[1..].iter().all(|c| c.cap == 64));
    }
}
