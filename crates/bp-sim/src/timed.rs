//! The timing-accurate functional simulator (§IV-D of the paper).
//!
//! Models kernel execution time (method cycles), data access time (per-word
//! input reads and output writes), channel buffering (bounded queues, one
//! iteration of implicit buffering per port plus configurable slack), and
//! per-PE scheduling (round-robin time multiplexing of resident kernels).
//! Placement and communication delays are *not* modeled, matching the
//! paper's simplification for throughput-oriented applications.
//!
//! Application inputs inject samples on a strict schedule derived from their
//! declared rate; an injection that finds a full queue is recorded as a
//! real-time violation. This is the mechanism used to "simulate to verify
//! that the application meets its real-time constraints".
//!
//! Scheduling uses a per-PE *ready set*: a node is marked dirty when an
//! item lands on one of its queues or when it fires, and cleaned when a
//! scan finds it unable to progress. A node whose inputs have not changed
//! cannot have gained a plan, so clean nodes are skipped without
//! re-planning and a PE whose dirty count is zero is dispatched in O(1).
//! The round-robin pointer advances exactly as in a full scan, so the
//! schedule — and therefore every simulation result — is bit-identical to
//! the exhaustive version.
//!
//! The engine itself is [`ShardSim`]: a discrete-event loop over a *set of
//! owned PEs*. The sequential [`TimedSimulator`] runs one shard owning every
//! PE; the multi-threaded [`crate::timed_parallel::ParallelTimedSimulator`]
//! runs one shard per worker over disjoint PE interaction regions (see
//! DESIGN.md §9). Both paths execute the same per-event code, so their
//! results can only differ if shard isolation is violated — which debug
//! assertions on every node access check.

use crate::events::{BucketQueue, EventQueue};
use crate::parallel::DisjointSlots;
use crate::runtime::{stuck_report, Action, Program, ProgramTables, RtNode};
use crate::stats::{PeStats, RealTimeVerdict, SimReport};
use crate::trace::{StallCause, Trace, TraceEvent, TraceMeta, TraceOptions, TraceRecorder};
use bp_core::graph::AppGraph;
use bp_core::item::Item;
use bp_core::kernel::NodeRole;
use bp_core::machine::{MachineSpec, Mapping};
use bp_core::token::ControlToken;
use bp_core::{BpError, Result};

/// Timed simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Target machine.
    pub machine: MachineSpec,
    /// Capacity of each input queue in items. `None` (the default) derives
    /// the capacity from the graph being simulated — see
    /// [`derive_channel_capacity`]; [`with_channel_capacity`](Self::with_channel_capacity)
    /// pins an explicit value instead.
    pub channel_capacity: Option<usize>,
    /// Frames to push through every application input.
    pub frames: u32,
    /// Event tracing (`None`, the default, records nothing and adds no
    /// per-event work beyond a branch). Tracing is *inert*: it cannot
    /// change the schedule, the [`SimReport`], or its fingerprint — see
    /// [`crate::trace`].
    pub trace: Option<TraceOptions>,
}

impl SimConfig {
    /// Default configuration on the evaluation machine, with the channel
    /// capacity derived per graph (a window-row of slack; see
    /// [`derive_channel_capacity`]).
    pub fn new(frames: u32) -> Self {
        Self {
            machine: MachineSpec::default_eval(),
            channel_capacity: None,
            frames,
            trace: None,
        }
    }

    /// Use a specific machine.
    pub fn with_machine(mut self, machine: MachineSpec) -> Self {
        self.machine = machine;
        self
    }

    /// Pin an explicit per-queue capacity instead of deriving it from the
    /// graph.
    pub fn with_channel_capacity(mut self, items: usize) -> Self {
        self.channel_capacity = Some(items);
        self
    }

    /// Enable deterministic event tracing; retrieve the [`Trace`] via
    /// [`TimedSimulator::run_with_trace`] (or the parallel equivalent).
    pub fn with_trace(mut self, options: TraceOptions) -> Self {
        self.trace = Some(options);
        self
    }
}

/// Derive the per-queue capacity for a graph: enough slack that within-frame
/// burstiness — a windowed kernel receives its row of windows faster than it
/// drains them, catching up during the halo rows — does not register as a
/// missed deadline, while sustained overload still does.
///
/// The slack needed scales with the widest input window row any kernel
/// consumes, so the capacity is that width rounded up to a power of two,
/// with a floor of 64 items (the pre-derivation default; every bundled
/// application's windows are narrower, so they are unaffected).
pub fn derive_channel_capacity(graph: &AppGraph) -> usize {
    let widest = graph
        .nodes()
        .flat_map(|(_, n)| n.spec().inputs.iter().map(|i| i.size.w as usize))
        .max()
        .unwrap_or(0);
    widest.next_power_of_two().max(64)
}

/// What a pending simulator event does when it fires.
#[derive(Clone, Copy, Debug)]
pub(crate) enum EventKind {
    /// Inject the next sample of a source (index into
    /// [`ProgramTables::sources`]).
    SourceEmit {
        /// Global source index.
        source: usize,
    },
    /// A PE finishes its current firing.
    PeDone {
        /// Global PE index.
        pe: usize,
    },
}

struct Inflight {
    node: usize,
    emitted: Vec<(usize, Item)>,
    run_s: f64,
    read_s: f64,
    write_s: f64,
}

/// Everything the event loop reads but never writes, shared by all shards:
/// routing/pacing tables, the mapping, and resolved configuration.
pub(crate) struct Shared {
    pub(crate) tables: ProgramTables,
    /// Distinct upstream producer nodes per node (for dispatch waves).
    pub(crate) upstream: Vec<Vec<usize>>,
    pub(crate) pe_of_node: Vec<usize>,
    pub(crate) residents: Vec<Vec<usize>>,
    pub(crate) node_roles: Vec<NodeRole>,
    pub(crate) machine: MachineSpec,
    pub(crate) channel_capacity: usize,
    pub(crate) frames: u32,
    pub(crate) required_rate_hz: f64,
    pub(crate) num_sinks: usize,
    pub(crate) trace: Option<TraceOptions>,
}

/// Instantiate `graph` under `mapping` and resolve `config` into the node
/// instances plus the read-only [`Shared`] tables both simulators consume.
pub(crate) fn build_shared(
    graph: &AppGraph,
    mapping: &Mapping,
    config: SimConfig,
) -> Result<(Vec<RtNode>, Shared)> {
    if mapping.pe_of_node.len() != graph.node_count() {
        return Err(BpError::Simulation(format!(
            "mapping covers {} nodes but graph has {}",
            mapping.pe_of_node.len(),
            graph.node_count()
        )));
    }
    let channel_capacity = config
        .channel_capacity
        .unwrap_or_else(|| derive_channel_capacity(graph));
    let program = Program::instantiate(graph)?;
    let (nodes, tables) = program.split();
    let n = nodes.len();
    let mut upstream = vec![Vec::new(); n];
    for (_, c) in graph.channels() {
        if !upstream[c.dst.node.0].contains(&c.src.node.0) {
            upstream[c.dst.node.0].push(c.src.node.0);
        }
    }
    let node_roles: Vec<NodeRole> = nodes.iter().map(|rt| rt.spec.role).collect();
    let num_sinks = node_roles
        .iter()
        .filter(|r| **r == NodeRole::Sink)
        .count()
        .max(1);
    let required_rate_hz = graph
        .sources()
        .iter()
        .map(|s| s.rate_hz)
        .fold(0.0f64, f64::max);
    let shared = Shared {
        tables,
        upstream,
        pe_of_node: mapping.pe_of_node.clone(),
        residents: mapping.residents(),
        node_roles,
        machine: config.machine,
        channel_capacity,
        frames: config.frames,
        required_rate_hz,
        num_sinks,
        trace: config.trace,
    };
    Ok((nodes, shared))
}

/// What one processed event did, recorded so the parallel coordinator can
/// replay the *global* heap dynamics (event pop order and sequence-number
/// assignment) without re-simulating: how many events it pushed (times in
/// [`ShardLog::push_times`]), and how many sink end-of-frames and frame
/// starts it recorded (their timestamps all equal `t`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct LogEntry {
    pub(crate) t: f64,
    pub(crate) pushes: u32,
    pub(crate) eofs: u32,
    pub(crate) starts: u32,
}

/// Per-shard event journal for deterministic merging (DESIGN.md §9).
#[derive(Default)]
pub(crate) struct ShardLog {
    /// One entry per owned startup const firing, in global `consts` order.
    pub(crate) init: Vec<LogEntry>,
    /// One entry per popped event, in shard pop order.
    pub(crate) main: Vec<LogEntry>,
    /// Scheduled times of every push, in push order, consumed sequentially
    /// by the replay.
    pub(crate) push_times: Vec<f64>,
}

/// Owned results of one shard's run, extracted once the event loop is done
/// so the node slots can be reclaimed.
pub(crate) struct ShardOutcome {
    pub(crate) stats: Vec<PeStats>,
    pub(crate) node_busy: Vec<f64>,
    pub(crate) violations: u64,
    pub(crate) sink_eof_times: Vec<f64>,
    pub(crate) frame_start_times: Vec<f64>,
    pub(crate) custom_token_emissions: Vec<u64>,
    pub(crate) budget_overruns: Vec<u64>,
    pub(crate) node_max_queue: Vec<usize>,
    pub(crate) now: f64,
    pub(crate) log: Option<ShardLog>,
    pub(crate) trace: Option<TraceRecorder>,
}

/// The discrete-event engine for one shard: a set of PEs (and their resident
/// nodes) that never interact with any other shard's. The sequential
/// simulator is the single-shard special case. All state vectors are
/// globally indexed; entries for PEs/nodes the shard does not own stay at
/// their initial values and are ignored during merging.
pub(crate) struct ShardSim<'a> {
    shared: &'a Shared,
    nodes: &'a DisjointSlots<RtNode>,
    shard: usize,
    shard_of_pe: &'a [usize],
    rr: Vec<usize>,
    pe_inflight: Vec<Option<Inflight>>,
    /// Ready-set state: `dirty[node]` is true when the node's inputs or
    /// private state changed since its last failed plan; a clean node is
    /// guaranteed unable to fire and is skipped without re-planning.
    dirty: Vec<bool>,
    /// Number of dirty residents per PE; zero means the PE has no work.
    dirty_count: Vec<usize>,
    events: BucketQueue<EventKind>,
    now: f64,
    stats: Vec<PeStats>,
    node_busy: Vec<f64>,
    violations: u64,
    sink_eof_times: Vec<f64>,
    /// Injection time of each frame's first sample (global source 0 only).
    frame_start_times: Vec<f64>,
    /// Custom-token emissions per node, for §II-C rate-bound checking.
    custom_token_emissions: Vec<u64>,
    source_progress: Vec<u64>,
    budget_overruns: Vec<u64>,
    node_max_queue: Vec<usize>,
    log: Option<ShardLog>,
    /// Event recorder, present only when [`SimConfig::trace`] is set.
    /// Recording is read-only with respect to simulation state, so its
    /// presence cannot perturb the schedule.
    trace: Option<TraceRecorder>,
    /// Last recorded stall cause per PE (`None` = running); transitions
    /// are traced only on change. Unused when tracing is off.
    pe_stall: Vec<Option<StallCause>>,
    /// True while handling one loggable unit (a const firing or a popped
    /// event); gates push recording so source seeds are not journaled.
    in_entry: bool,
    entry_push_base: usize,
    entry_eof_base: usize,
    entry_start_base: usize,
}

impl<'a> ShardSim<'a> {
    /// `shard_of_pe` assigns every PE to a shard; this instance runs the
    /// PEs of shard `shard`. Pass `record = true` to journal event-loop
    /// dynamics for the parallel merge.
    pub(crate) fn new(
        shared: &'a Shared,
        nodes: &'a DisjointSlots<RtNode>,
        shard: usize,
        shard_of_pe: &'a [usize],
        record: bool,
    ) -> Self {
        let n = nodes.len();
        let num_pes = shared.residents.len();
        // One PE cycle per bucket: firing durations are cycle counts plus
        // fractional word costs, so event times cluster at this scale.
        let quantum = 1.0 / shared.machine.pe_clock_hz;
        Self {
            shared,
            nodes,
            shard,
            shard_of_pe,
            rr: vec![0; num_pes],
            pe_inflight: (0..num_pes).map(|_| None).collect(),
            dirty: vec![false; n],
            dirty_count: vec![0; num_pes],
            events: BucketQueue::new(quantum),
            now: 0.0,
            stats: vec![PeStats::default(); num_pes],
            node_busy: vec![0.0; n],
            violations: 0,
            sink_eof_times: Vec::new(),
            frame_start_times: Vec::new(),
            custom_token_emissions: vec![0; n],
            source_progress: vec![0; shared.tables.sources.len()],
            budget_overruns: vec![0; n],
            node_max_queue: vec![0; n],
            log: record.then(ShardLog::default),
            trace: shared.trace.map(TraceRecorder::new),
            pe_stall: vec![None; num_pes],
            in_entry: false,
            entry_push_base: 0,
            entry_eof_base: 0,
            entry_start_base: 0,
        }
    }

    #[inline]
    fn owns_node(&self, node: usize) -> bool {
        self.shard_of_pe[self.shared.pe_of_node[node]] == self.shard
    }

    /// Borrow an owned node. The disjointness contract makes this sound:
    /// every node belongs to exactly one shard and only its shard's worker
    /// ever reaches it (checked here in debug builds).
    #[inline]
    fn node(&self, i: usize) -> &RtNode {
        debug_assert!(
            self.owns_node(i),
            "shard {} touched node {} owned by shard {}",
            self.shard,
            i,
            self.shard_of_pe[self.shared.pe_of_node[i]]
        );
        // SAFETY: per the shard plan this worker is the unique owner of
        // node `i` (debug-asserted above), and the borrow is statement-scoped.
        unsafe { self.nodes.get(i) }
    }

    /// Mutably borrow an owned node. Same contract as [`node`](Self::node);
    /// callers keep the borrow statement-scoped so two live borrows of one
    /// slot cannot exist.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    fn node_mut(&self, i: usize) -> &mut RtNode {
        debug_assert!(
            self.owns_node(i),
            "shard {} touched node {} owned by shard {}",
            self.shard,
            i,
            self.shard_of_pe[self.shared.pe_of_node[i]]
        );
        // SAFETY: as in `node`, ownership is exclusive and borrows are
        // statement-scoped.
        unsafe { self.nodes.get_mut(i) }
    }

    fn push_event(&mut self, t: f64, kind: EventKind) {
        if self.in_entry {
            if let Some(log) = self.log.as_mut() {
                log.push_times.push(t);
            }
        }
        self.events.push(t, kind);
    }

    fn begin_entry(&mut self) {
        if let Some(log) = self.log.as_ref() {
            self.in_entry = true;
            self.entry_push_base = log.push_times.len();
            self.entry_eof_base = self.sink_eof_times.len();
            self.entry_start_base = self.frame_start_times.len();
        }
    }

    fn end_entry(&mut self, t: f64, init: bool) {
        // The recorder's per-entry counts mirror the journal's entries so
        // the parallel merge can interleave shard streams in replay order.
        if let Some(trace) = self.trace.as_mut() {
            trace.end_entry(init);
        }
        let (eofs, starts) = (
            (self.sink_eof_times.len() - self.entry_eof_base) as u32,
            (self.frame_start_times.len() - self.entry_start_base) as u32,
        );
        if let Some(log) = self.log.as_mut() {
            self.in_entry = false;
            let entry = LogEntry {
                t,
                pushes: (log.push_times.len() - self.entry_push_base) as u32,
                eofs,
                starts,
            };
            if init {
                log.init.push(entry);
            } else {
                log.main.push(entry);
            }
        }
    }

    /// Mark a node as possibly able to fire. Sources are paced externally
    /// and never enter the ready set.
    #[inline]
    fn mark_dirty(&mut self, node: usize) {
        if !self.dirty[node] && self.shared.node_roles[node] != NodeRole::Source {
            self.dirty[node] = true;
            self.dirty_count[self.shared.pe_of_node[node]] += 1;
        }
    }

    #[inline]
    fn clear_dirty(&mut self, node: usize) {
        if self.dirty[node] {
            self.dirty[node] = false;
            self.dirty_count[self.shared.pe_of_node[node]] -= 1;
        }
    }

    /// Run this shard's portion of the simulation to quiescence: fire the
    /// owned startup constants (in global order), seed the owned sources,
    /// and drain the event queue.
    pub(crate) fn run(&mut self) {
        // Constants fire at t = 0, before any source sample.
        for ci in 0..self.shared.tables.consts.len() {
            let (node, method) = self.shared.tables.consts[ci];
            if !self.owns_node(node) {
                continue;
            }
            self.begin_entry();
            self.record_untriggered_begin(node, method);
            let emitted = self.node_mut(node).fire_untriggered(method);
            // The firing may change the node's private state (e.g. a
            // feedback primer becoming ready), so re-plan it.
            self.mark_dirty(node);
            let touched = self.route_timed(node, emitted);
            self.record_untriggered_end(node);
            self.dispatch_wave(touched);
            self.end_entry(0.0, true);
        }
        for s in 0..self.shared.tables.sources.len() {
            if self.owns_node(self.shared.tables.sources[s].node) {
                self.push_event(0.0, EventKind::SourceEmit { source: s });
            }
        }

        while let Some(ev) = self.events.pop() {
            self.now = ev.t;
            self.begin_entry();
            match ev.payload {
                EventKind::SourceEmit { source } => self.handle_source_emit(source),
                EventKind::PeDone { pe } => self.handle_pe_done(pe),
            }
            self.end_entry(ev.t, false);
        }
    }

    /// Extract the owned results, releasing the borrows on the node slots.
    pub(crate) fn into_outcome(self) -> ShardOutcome {
        ShardOutcome {
            stats: self.stats,
            node_busy: self.node_busy,
            violations: self.violations,
            sink_eof_times: self.sink_eof_times,
            frame_start_times: self.frame_start_times,
            custom_token_emissions: self.custom_token_emissions,
            budget_overruns: self.budget_overruns,
            node_max_queue: self.node_max_queue,
            now: self.now,
            log: self.log,
            trace: self.trace,
        }
    }

    /// Trace a zero-cost untriggered (source/const) firing: the engine
    /// charges it no PE time, so it is recorded as a begin/end pair at the
    /// current instant, bracketing its routing effects.
    fn record_untriggered_begin(&mut self, node: usize, method: usize) {
        let (t, pe) = (self.now, self.shared.pe_of_node[node] as u32);
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent::FiringBegin {
                t,
                node: node as u32,
                method: method as u32,
                pe,
                cycles: 0,
            });
        }
    }

    fn record_untriggered_end(&mut self, node: usize) {
        let (t, pe) = (self.now, self.shared.pe_of_node[node] as u32);
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent::FiringEnd {
                t,
                node: node as u32,
                pe,
            });
        }
    }

    fn handle_source_emit(&mut self, source: usize) {
        let s = self.shared.tables.sources[source];
        if source == 0 && self.source_progress[source].is_multiple_of(s.frame.area()) {
            self.frame_start_times.push(self.now);
        }
        // Check capacity at the destinations before injecting; a full queue
        // at the scheduled time is a missed deadline (counted once per
        // injection, however many destinations are saturated).
        let full = self.shared.tables.routes[s.node][0]
            .iter()
            .any(|&(dn, dp)| self.node(dn).queues[dp].len() >= self.shared.channel_capacity);
        if full {
            self.violations += 1;
        }
        self.record_untriggered_begin(s.node, s.method);
        let emitted = self.node_mut(s.node).fire_untriggered(s.method);
        let touched = self.route_timed(s.node, emitted);
        self.record_untriggered_end(s.node);
        self.dispatch_wave(touched);

        self.source_progress[source] += 1;
        let total = s.frame.area() * self.shared.frames as u64;
        if self.source_progress[source] < total {
            let period = 1.0 / (s.rate_hz * s.frame.area() as f64);
            let t_next = self.source_progress[source] as f64 * period;
            self.push_event(t_next, EventKind::SourceEmit { source });
        }
    }

    fn handle_pe_done(&mut self, pe: usize) {
        let inflight = self.pe_inflight[pe]
            .take()
            .expect("PeDone without inflight");
        self.stats[pe].run += inflight.run_s;
        self.stats[pe].read += inflight.read_s;
        self.stats[pe].write += inflight.write_s;
        self.node_busy[inflight.node] += inflight.run_s + inflight.read_s + inflight.write_s;
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent::FiringEnd {
                t: self.now,
                node: inflight.node as u32,
                pe: pe as u32,
            });
        }
        let mut touched = self.route_timed(inflight.node, inflight.emitted);
        touched.push(pe);
        self.dispatch_wave(touched);
    }

    /// Deliver items, recording sink EOF arrival times and marking the
    /// receiving nodes dirty. Returns the PEs that may now have new work;
    /// the drained buffer is recycled to the emitting node.
    fn route_timed(&mut self, from: usize, mut emitted: Vec<(usize, Item)>) -> Vec<usize> {
        let mut touched = Vec::new();
        for (port, item) in emitted.drain(..) {
            if let Item::Control(ControlToken::Custom(_)) = item {
                self.custom_token_emissions[from] += 1;
            }
            let n_dests = self.shared.tables.routes[from][port].len();
            for di in 0..n_dests {
                let (dn, dp) = self.shared.tables.routes[from][port][di];
                if self.shared.node_roles[dn] == NodeRole::Sink {
                    if let Item::Control(ControlToken::EndOfFrame) = item {
                        self.sink_eof_times.push(self.now);
                    }
                }
                let depth = {
                    let queue = &mut self.node_mut(dn).queues[dp];
                    queue.push_back(item.clone());
                    queue.len()
                };
                if depth > self.node_max_queue[dn] {
                    self.node_max_queue[dn] = depth;
                }
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(TraceEvent::QueueDepth {
                        t: self.now,
                        node: dn as u32,
                        port: dp as u32,
                        depth: depth as u32,
                    });
                    if let Item::Control(token) = &item {
                        trace.record(TraceEvent::Token {
                            t: self.now,
                            node: dn as u32,
                            port: dp as u32,
                            token: *token,
                        });
                    }
                }
                self.mark_dirty(dn);
                let pe = self.shared.pe_of_node[dn];
                if !touched.contains(&pe) {
                    touched.push(pe);
                }
            }
        }
        self.node_mut(from).recycle_out_buf(emitted);
        touched
    }

    /// Attempt to start work on each PE in the list; starting a firing frees
    /// upstream queue space, so upstream PEs are re-attempted transitively.
    fn dispatch_wave(&mut self, mut worklist: Vec<usize>) {
        while let Some(pe) = worklist.pop() {
            if self.pe_inflight[pe].is_some() {
                continue;
            }
            if let Some(node) = self.try_start(pe) {
                for i in 0..self.shared.upstream[node].len() {
                    let up_pe = self.shared.pe_of_node[self.shared.upstream[node][i]];
                    if !worklist.contains(&up_pe) {
                        worklist.push(up_pe);
                    }
                }
                // The PE itself is now busy; it will be revisited at PeDone.
            } else if self.trace.is_some() {
                self.record_stall(pe);
            }
        }
    }

    /// Attribute why `pe` failed to start a firing just now, from pure
    /// reads of its residents' state. Any resident with a fireable plan
    /// must have been blocked by `downstream_space` (that is the only way
    /// `try_start` declines a plan), so back-pressure wins the attribution;
    /// otherwise queued-but-untriggerable inputs mean the PE is starved,
    /// and an empty PE is idle.
    fn stall_cause(&self, pe: usize) -> StallCause {
        let mut has_items = false;
        for &node in &self.shared.residents[pe] {
            if self.shared.node_roles[node] == NodeRole::Source {
                continue;
            }
            let n = self.node(node);
            if n.plan().is_some() {
                return StallCause::OutputBlocked;
            }
            has_items = has_items || n.queued_items() > 0;
        }
        if has_items {
            StallCause::InputStarved
        } else {
            StallCause::Idle
        }
    }

    /// Record a stall transition for `pe` if its attributed cause changed
    /// since the last record. Only called when tracing is enabled.
    fn record_stall(&mut self, pe: usize) {
        let cause = self.stall_cause(pe);
        if self.pe_stall[pe] != Some(cause) {
            self.pe_stall[pe] = Some(cause);
            let t = self.now;
            self.trace.as_mut().unwrap().record(TraceEvent::Stall {
                t,
                pe: pe as u32,
                cause,
            });
        }
    }

    /// Try to begin one firing on `pe`; returns the node that fired.
    ///
    /// Residents are scanned in round-robin order, skipping clean nodes
    /// (their inputs have not changed since they last failed to plan, so
    /// they still cannot fire). A dirty node that plans `None` is cleaned;
    /// one that is only blocked on downstream space stays dirty, because
    /// space freeing re-triggers a dispatch of this PE. The round-robin
    /// pointer advances exactly as in an exhaustive scan.
    fn try_start(&mut self, pe: usize) -> Option<usize> {
        if self.dirty_count[pe] == 0 {
            return None;
        }
        let len = self.shared.residents[pe].len();
        for k in 0..len {
            let idx = (self.rr[pe] + k) % len;
            let node = self.shared.residents[pe][idx];
            if !self.dirty[node] {
                continue;
            }
            let Some(action) = self.node(node).plan() else {
                self.clear_dirty(node);
                continue;
            };
            if !self.downstream_space(node, action) {
                continue;
            }
            // Compute read words from the items about to be consumed.
            let read_words: u64 = match action {
                Action::Fire { method } => {
                    let n = self.node(node);
                    n.compiled[method]
                        .triggers
                        .iter()
                        .map(|&(p, _)| n.queues[p].front().map_or(0, |i| i.words()))
                        .sum()
                }
                Action::Forward { .. } => 0,
            };
            let declared: u64 = match action {
                Action::Fire { method } => self.node(node).compiled[method].cost_cycles,
                Action::Forward { .. } => 1,
            };
            let (emitted, actual) = self.node_mut(node).execute_with_cost(action);
            // Firing consumed inputs and may have changed private state;
            // the node must be re-planned before it can be skipped again.
            self.mark_dirty(node);
            // Data-dependent-cost kernels report their actual work; running
            // past the declared budget is a runtime resource exception
            // (§VII) recorded per node.
            let cycles = actual.unwrap_or(declared);
            if cycles > declared {
                self.budget_overruns[node] += 1;
            }
            let write_words: u64 = emitted.iter().map(|(_, i)| i.words()).sum();
            let m = &self.shared.machine;
            let run_s = cycles as f64 / m.pe_clock_hz;
            let read_s = read_words as f64 * m.read_cost_per_word / m.pe_clock_hz;
            let write_s = write_words as f64 * m.write_cost_per_word / m.pe_clock_hz;
            let dt = run_s + read_s + write_s;
            self.pe_inflight[pe] = Some(Inflight {
                node,
                emitted,
                run_s,
                read_s,
                write_s,
            });
            self.rr[pe] = (idx + 1) % len;
            self.pe_stall[pe] = None;
            if self.trace.is_some() {
                let t = self.now;
                let mi = match action {
                    Action::Fire { method } | Action::Forward { method, .. } => method,
                };
                // The firing consumed one item from each trigger port;
                // capture the new depths of those channels before taking
                // the recorder borrow.
                let depths: Vec<(u32, u32)> = {
                    let n = self.node(node);
                    n.compiled[mi]
                        .triggers
                        .iter()
                        .map(|&(port, _)| (port as u32, n.queues[port].len() as u32))
                        .collect()
                };
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(TraceEvent::FiringBegin {
                        t,
                        node: node as u32,
                        method: mi as u32,
                        pe: pe as u32,
                        cycles,
                    });
                    for (port, depth) in depths {
                        trace.record(TraceEvent::QueueDepth {
                            t,
                            node: node as u32,
                            port,
                            depth,
                        });
                    }
                }
            }
            let t_done = self.now + dt;
            self.push_event(t_done, EventKind::PeDone { pe });
            return Some(node);
        }
        None
    }

    /// True when every destination queue of the action's outputs has room
    /// for this firing's worst-case emissions (2 items of slack).
    fn downstream_space(&self, node: usize, action: Action) -> bool {
        let method = match action {
            Action::Fire { method } | Action::Forward { method, .. } => method,
        };
        let outputs = &self.node(node).compiled[method].outputs;
        for &port in outputs {
            for &(dn, dp) in &self.shared.tables.routes[node][port] {
                if self.node(dn).queues[dp].len() + 2 > self.shared.channel_capacity {
                    return false;
                }
            }
        }
        true
    }
}

/// Walk the wait-for graph of a capacity-deadlocked program and render the
/// cycle of filled channels, by name.
///
/// A blocked node (fireable plan, all PEs idle) is waiting on its first
/// output channel that fails the `downstream_space` check; following those
/// edges from each blocked node in index order either revisits a node —
/// the wait-for cycle (in a feedback loop, the channel chain that filled)
/// — or dead-ends. Pure reads only, and both engines call this on the same
/// merged node state, so the rendered diagnostic is identical between the
/// sequential and parallel simulators.
fn deadlock_wait_cycle(shared: &Shared, nodes: &[RtNode]) -> Option<String> {
    use std::fmt::Write as _;
    let n = nodes.len();
    let blocked: Vec<bool> = (0..n)
        .map(|i| shared.node_roles[i] != NodeRole::Source && nodes[i].plan().is_some())
        .collect();
    // The first full output channel of a blocked node: `(out_port, dst,
    // dst_port)`. Deterministic because ports and routes scan in order.
    let wait_edge = |i: usize| -> Option<(usize, usize, usize)> {
        let method = match nodes[i].plan()? {
            Action::Fire { method } | Action::Forward { method, .. } => method,
        };
        for &port in &nodes[i].compiled[method].outputs {
            for &(dn, dp) in &shared.tables.routes[i][port] {
                if nodes[dn].queues[dp].len() + 2 > shared.channel_capacity {
                    return Some((port, dn, dp));
                }
            }
        }
        None
    };
    for start in (0..n).filter(|&i| blocked[i]) {
        // `(src, out_port, dst, in_port)` hops from `start`.
        let mut path: Vec<(usize, usize, usize, usize)> = Vec::new();
        let mut pos = vec![usize::MAX; n];
        let mut cur = start;
        while blocked[cur] && pos[cur] == usize::MAX {
            let Some((op, dst, ip)) = wait_edge(cur) else {
                break;
            };
            pos[cur] = path.len();
            path.push((cur, op, dst, ip));
            cur = dst;
        }
        if blocked[cur] && pos[cur] != usize::MAX {
            let mut s = String::new();
            for (k, &(src, op, dst, ip)) in path[pos[cur]..].iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                let _ = write!(
                    s,
                    "{}.{} -> {}.{} ({}/{} full)",
                    nodes[src].name,
                    nodes[src].spec.outputs[op].name,
                    nodes[dst].name,
                    nodes[dst].spec.inputs[ip].name,
                    nodes[dst].queues[ip].len(),
                    shared.channel_capacity
                );
            }
            return Some(s);
        }
    }
    None
}

/// Check the settled program for a capacity deadlock and build the final
/// report. Used identically by the sequential and parallel simulators, with
/// the latter feeding merged per-shard state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_report(
    shared: &Shared,
    nodes: &[RtNode],
    stats: Vec<PeStats>,
    node_busy: Vec<f64>,
    now: f64,
    violations: u64,
    sink_eof_times: Vec<f64>,
    frame_start_times: Vec<f64>,
    custom_token_emissions: &[u64],
    budget_overruns: Vec<u64>,
    node_max_queue: Vec<usize>,
) -> Result<SimReport> {
    // Everything settled. If any node still has a fireable plan, the
    // only thing that can have stopped it is downstream capacity — with
    // all PEs idle that is a genuine capacity deadlock. Residual items
    // with no fireable plan are legitimate (e.g. the final frame
    // circulating in a feedback loop) and are reported, not fatal.
    let deadlocked = (0..nodes.len())
        .any(|i| shared.node_roles[i] != NodeRole::Source && nodes[i].plan().is_some());
    if deadlocked {
        let queued: usize = nodes.iter().map(|n| n.queued_items()).sum();
        return Err(BpError::Simulation(
            match deadlock_wait_cycle(shared, nodes) {
                Some(cycle) => format!(
                    "capacity deadlock with {} items queued; wait-for cycle: {}\n{}",
                    queued,
                    cycle,
                    stuck_report(nodes)
                ),
                None => format!(
                    "capacity deadlock with {} items queued:\n{}",
                    queued,
                    stuck_report(nodes)
                ),
            },
        ));
    }
    let residual: u64 = nodes.iter().map(|n| n.queued_items() as u64).sum();

    let sinks = shared.num_sinks;
    let frames_completed = (sink_eof_times.len() / sinks) as u32;
    // One frame completes when all sinks have seen its end-of-frame;
    // group the EOF arrivals per frame and rate the completions.
    let completions: Vec<f64> = sink_eof_times
        .chunks_exact(sinks)
        .map(|c| c.iter().cloned().fold(0.0f64, f64::max))
        .collect();
    let achieved = if completions.len() >= 2 && *completions.last().unwrap() > completions[0] {
        (completions.len() - 1) as f64 / (completions.last().unwrap() - completions[0])
    } else if now > 0.0 {
        frames_completed as f64 / now
    } else {
        0.0
    };
    let met = violations == 0 && frames_completed >= shared.frames;
    // Per-frame latency: first sample injection -> sink end-of-frame.
    // With several sinks, take the last EOF of each frame.
    let frame_latencies: Vec<f64> = sink_eof_times
        .chunks(sinks)
        .zip(frame_start_times.iter())
        .map(|(eofs, start)| eofs.iter().cloned().fold(0.0f64, f64::max) - start)
        .collect();
    // §II-C: verify every kernel stayed within its declared custom-token
    // rate bounds over the simulated interval.
    let mut token_rate_violations = Vec::new();
    if now > 0.0 {
        for (i, rt) in nodes.iter().enumerate() {
            let emitted = custom_token_emissions[i];
            if emitted == 0 {
                continue;
            }
            let declared: f64 = rt.spec.custom_tokens.iter().map(|t| t.max_rate_hz).sum();
            let observed = emitted as f64 / now;
            // Allow one token of slack for startup transients.
            if observed > declared + 1.0 / now {
                token_rate_violations.push((rt.name.clone(), observed, declared));
            }
        }
    }
    Ok(SimReport {
        pe_stats: stats,
        node_firings: nodes.iter().map(|n| n.firings).collect(),
        node_busy,
        sim_time: now,
        frames_completed,
        residual_items: residual,
        budget_overruns,
        node_max_queue,
        frame_latencies,
        token_rate_violations,
        verdict: RealTimeVerdict {
            met,
            violations,
            required_rate_hz: shared.required_rate_hz,
            achieved_rate_hz: achieved,
        },
    })
}

/// The timing-accurate simulator. Construct with a graph, a kernel-to-PE
/// mapping, and a configuration, then [`run`](Self::run).
pub struct TimedSimulator {
    nodes: Vec<RtNode>,
    shared: Shared,
}

impl TimedSimulator {
    /// Instantiate the graph under the given mapping.
    pub fn new(graph: &AppGraph, mapping: &Mapping, config: SimConfig) -> Result<Self> {
        let (nodes, shared) = build_shared(graph, mapping, config)?;
        Ok(Self { nodes, shared })
    }

    /// Wrap an already-instantiated program (the parallel simulator's
    /// single-shard fallback).
    pub(crate) fn from_parts(nodes: Vec<RtNode>, shared: Shared) -> Self {
        Self { nodes, shared }
    }

    /// Run the simulation to completion and report.
    pub fn run(self) -> Result<SimReport> {
        self.run_with_trace().map(|(report, _)| report)
    }

    /// Run the simulation and also return the recorded [`Trace`] when
    /// [`SimConfig::trace`] was set (`None` otherwise). The report is
    /// bit-identical to [`run`](Self::run)'s — tracing is inert.
    pub fn run_with_trace(self) -> Result<(SimReport, Option<Trace>)> {
        let Self { nodes, shared } = self;
        // One shard owning every PE: the engine runs exactly the schedule
        // documented at the top of this module.
        let shard_of_pe = vec![0usize; shared.residents.len()];
        let slots = DisjointSlots::new(nodes);
        let outcome = {
            let mut sim = ShardSim::new(&shared, &slots, 0, &shard_of_pe, false);
            sim.run();
            sim.into_outcome()
        };
        let nodes = slots.into_inner();
        // The single shard records in global pop order, so its buffer is
        // already the canonical trace.
        let trace = outcome.trace.map(|rec| {
            let (events, dropped) = rec.into_events();
            Trace {
                meta: TraceMeta::from_parts(
                    &nodes,
                    &shared.pe_of_node,
                    shared.residents.len(),
                    shared.machine.pe_clock_hz,
                ),
                events,
                dropped,
            }
        });
        let report = assemble_report(
            &shared,
            &nodes,
            outcome.stats,
            outcome.node_busy,
            outcome.now,
            outcome.violations,
            outcome.sink_eof_times,
            outcome.frame_start_times,
            &outcome.custom_token_emissions,
            outcome.budget_overruns,
            outcome.node_max_queue,
        )?;
        Ok((report, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_core::{Dim2, GraphBuilder};

    fn chain_graph(kernel: bp_core::KernelDef) -> AppGraph {
        let dim = Dim2::new(20, 12);
        let mut b = GraphBuilder::new();
        let src = b.add_source("Input", bp_kernels::pattern_source(dim), dim, 50.0);
        let k = b.add("K", kernel);
        let (sdef, _) = bp_kernels::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", k, "in");
        b.connect(k, "out", snk, "in");
        b.build().unwrap()
    }

    #[test]
    fn capacity_derives_floor_for_narrow_windows() {
        // Every input window in this graph is narrower than 64, so the
        // derived capacity is the 64-item floor (the historical default).
        let g = chain_graph(bp_kernels::median(5, 5));
        assert_eq!(derive_channel_capacity(&g), 64);
    }

    #[test]
    fn capacity_derives_from_widest_input_row() {
        // A 100-tap FIR consumes a 100-wide window row: capacity rounds up
        // to the next power of two.
        let dim = Dim2::new(200, 1);
        let mut b = GraphBuilder::new();
        let src = b.add_source("In", bp_kernels::pattern_source(dim), dim, 100.0);
        let fir = b.add("Fir", bp_kernels::fir(100));
        let taps = b.add(
            "Taps",
            bp_kernels::const_source("taps", bp_kernels::boxcar_taps(100)),
        );
        let (sdef, _) = bp_kernels::sink();
        let snk = b.add("Out", sdef);
        b.connect(src, "out", fir, "in");
        b.connect(taps, "out", fir, "taps");
        b.connect(fir, "out", snk, "in");
        let g = b.build().unwrap();
        assert_eq!(derive_channel_capacity(&g), 128);
    }

    #[test]
    fn explicit_capacity_overrides_derivation() {
        let g = chain_graph(bp_kernels::scale(2.0, 0.0));
        let cfg = SimConfig::new(1).with_channel_capacity(16);
        assert_eq!(cfg.channel_capacity, Some(16));
        // The override is what the simulator resolves, not the derived value.
        let mapping = Mapping::one_to_one(g.node_count());
        let (_, shared) = build_shared(&g, &mapping, cfg).unwrap();
        assert_eq!(shared.channel_capacity, 16);
        let (_, shared) = build_shared(&g, &mapping, SimConfig::new(1)).unwrap();
        assert_eq!(shared.channel_capacity, 64);
    }
}
