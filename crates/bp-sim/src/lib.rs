//! # bp-sim — functional and timing-accurate simulators
//!
//! Executable semantics for block-parallel application graphs.
//!
//! - [`runtime`]: shared firing machinery — method trigger matching and
//!   automatic control-token forwarding (§II-C).
//! - [`functional`]: deterministic untimed execution (the golden semantics
//!   used for correctness testing).
//! - [`timed`]: the timing-accurate functional simulator of §IV-D, modeling
//!   kernel execution cycles, per-word input read / output write time,
//!   channel capacity, per-PE time multiplexing and scheduling — but not
//!   placement/communication delay, matching the paper's simplification.
//! - [`stats`]: per-PE utilization (run/read/write breakdown), throughput
//!   measurement, and real-time verdicts.
//! - [`parallel`]: a host-side batch runner for simulation sweeps (each
//!   simulation stays deterministic; only the batch is threaded).

#![warn(missing_docs)]

pub mod functional;
pub mod parallel;
pub mod runtime;
pub mod stats;
pub mod timed;

pub use functional::FunctionalExecutor;
pub use parallel::{run_batch, run_batch_with_workers};
pub use runtime::{Action, Program, RtNode, SourceRt};
pub use stats::{PeStats, RealTimeVerdict, SimReport};
pub use timed::{SimConfig, TimedSimulator};
