//! # bp-sim — functional and timing-accurate simulators
//!
//! Executable semantics for block-parallel application graphs.
//!
//! - [`runtime`]: shared firing machinery — method trigger matching and
//!   automatic control-token forwarding (§II-C).
//! - [`functional`]: deterministic untimed execution (the golden semantics
//!   used for correctness testing).
//! - [`timed`]: the timing-accurate functional simulator of §IV-D, modeling
//!   kernel execution cycles, per-word input read / output write time,
//!   channel capacity, per-PE time multiplexing and scheduling, plus a
//!   configurable inter-PE communication delay model
//!   ([`bp_core::CommModel`]; the zero default matches the paper's
//!   no-delay simplification bit for bit).
//! - [`timed_parallel`]: the same timed semantics executed across worker
//!   threads — independent PE interaction regions simulate concurrently,
//!   delayed channels give conservative lookahead *within* a region, and
//!   the event journals are merged by replay, so the report is bitwise
//!   identical to [`timed`]'s (DESIGN.md §9, §11).
//! - [`deadlock`]: structured capacity-deadlock diagnostics — the
//!   [`DeadlockReport`] both timed engines assemble identically when a
//!   simulation wedges, and the [`SimOutcome`] returned by their
//!   `run_outcome` entry points.
//! - [`events`]: the pending-event queues (calendar queue + binary-heap
//!   reference) shared by the timed engines.
//! - [`stats`]: per-PE utilization (run/read/write breakdown), throughput
//!   measurement, and real-time verdicts.
//! - [`parallel`]: a host-side batch runner for simulation sweeps (each
//!   simulation stays deterministic; only the batch is threaded).
//! - [`trace`]: deterministic event tracing for both timed engines —
//!   firings, queue depths, token arrivals, and stall attribution — inert
//!   with respect to simulation results and bitwise identical between the
//!   sequential and parallel engines.
//! - [`chrome`]: Chrome trace-event JSON export (Perfetto-loadable) and a
//!   dependency-free JSON well-formedness checker.

#![warn(missing_docs)]

pub mod chrome;
pub mod deadlock;
pub mod events;
pub mod functional;
pub mod parallel;
pub mod runtime;
pub mod stats;
pub mod timed;
pub mod timed_parallel;
pub mod trace;

pub use bp_core::{CommModel, CommProfile};
pub use chrome::{chrome_trace_json, validate_json};
pub use deadlock::{CapacityBump, DeadlockHop, DeadlockReport, SimOutcome};
pub use events::{BucketQueue, Event, EventQueue, HeapQueue};
pub use functional::FunctionalExecutor;
pub use parallel::{run_batch, run_batch_with_workers};
pub use runtime::{Action, Program, RtNode, SourceRt};
pub use stats::{PeStats, RealTimeVerdict, SimReport};
pub use timed::{derive_channel_capacity, Backend, SimConfig, TimedSimulator};
pub use timed_parallel::{profile_node_weights, ParallelRunStats, ParallelTimedSimulator};
pub use trace::{
    ChannelHighWater, StallCause, Trace, TraceChannel, TraceEvent, TraceMeta, TraceOptions,
};
